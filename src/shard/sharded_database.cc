#include "shard/sharded_database.h"

#include <algorithm>
#include <utility>

namespace precis {

std::vector<Tid> MergeAscendingTids(std::vector<std::vector<Tid>> lists) {
  size_t total = 0;
  size_t live = 0;
  size_t last = 0;
  for (size_t i = 0; i < lists.size(); ++i) {
    total += lists[i].size();
    if (!lists[i].empty()) {
      ++live;
      last = i;
    }
  }
  if (live == 0) return {};
  if (live == 1) return std::move(lists[last]);
  std::vector<Tid> out;
  out.reserve(total);
  std::vector<size_t> pos(lists.size(), 0);
  for (size_t emitted = 0; emitted < total; ++emitted) {
    size_t best = lists.size();
    for (size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] >= lists[i].size()) continue;
      if (best == lists.size() || lists[i][pos[i]] < lists[best][pos[best]]) {
        best = i;
      }
    }
    out.push_back(lists[best][pos[best]++]);
  }
  return out;
}

Status ShardedRelation::MirrorLookupCharges(const std::string& attribute_name,
                                            ExecutionContext* ctx) const {
  auto idx = schema_.AttributeIndex(attribute_name);
  if (!idx.ok()) return idx.status();
  if (HasIndex(attribute_name)) {
    if (ctx != nullptr) {
      PRECIS_RETURN_NOT_OK(ctx->CheckFault(FaultSite::kIndexProbe));
    }
    if (stats_ != nullptr) {
      stats_->index_probes.fetch_add(1, std::memory_order_relaxed);
    }
    if (ctx != nullptr) ctx->ChargeIndexProbe();
  } else {
    if (ctx != nullptr) {
      PRECIS_RETURN_NOT_OK(ctx->CheckFault(FaultSite::kRelationScan));
    }
    if (stats_ != nullptr) {
      stats_->sequential_scans.fetch_add(1, std::memory_order_relaxed);
    }
    if (ctx != nullptr) ctx->ChargeSequentialScan();
  }
  return Status::OK();
}

Result<std::vector<Tid>> ShardedRelation::ShardLookupGlobal(
    size_t shard, const std::string& attribute_name, const Value& key) const {
  auto locals = shard_rel_[shard]->LookupEquals(attribute_name, key, nullptr);
  if (!locals.ok()) return locals.status();
  std::vector<Tid> out;
  out.reserve(locals->size());
  const std::vector<Tid>& map = local_to_global_[shard];
  for (Tid local : *locals) out.push_back(map[local]);
  return out;
}

Result<std::vector<Tid>> ShardedRelation::ReplicaLookupGlobal(
    size_t shard, const std::string& attribute_name, const Value& key) const {
  auto locals =
      replica_rel_[shard]->LookupEquals(attribute_name, key, nullptr);
  if (!locals.ok()) return locals.status();
  std::vector<Tid> out;
  out.reserve(locals->size());
  const std::vector<Tid>& map = local_to_global_[shard];
  for (Tid local : *locals) out.push_back(map[local]);
  return out;
}

Result<std::vector<Tid>> ShardedRelation::LookupEquals(
    const std::string& attribute_name, const Value& key,
    ExecutionContext* ctx) const {
  PRECIS_RETURN_NOT_OK(MirrorLookupCharges(attribute_name, ctx));
  std::vector<std::vector<Tid>> lists;
  lists.reserve(shard_rel_.size());
  for (size_t s = 0; s < shard_rel_.size(); ++s) {
    auto l = ShardLookupGlobal(s, attribute_name, key);
    if (!l.ok()) return l.status();
    lists.push_back(std::move(*l));
  }
  return MergeAscendingTids(std::move(lists));
}

void ShardedRelation::ProjectScatterImpl(
    const Tid* tids, size_t n, const std::vector<size_t>* projection,
    size_t width, Value* out, ExecutionContext* ctx,
    std::vector<uint64_t>* shard_fetches) const {
  const size_t shards = shard_rel_.size();
  // Group the chunk's global tids by owning shard, preserving each tid's
  // output row so the scatter-back lands cells exactly where the
  // single-engine kernel would.
  std::vector<std::vector<Tid>> locals(shards);
  std::vector<std::vector<size_t>> rows(shards);
  for (size_t i = 0; i < n; ++i) {
    size_t s = owner_[tids[i]];
    locals[s].push_back(local_of_[tids[i]]);
    rows[s].push_back(i);
  }
  std::vector<Value> tmp;
  for (size_t s = 0; s < shards; ++s) {
    if (locals[s].empty()) continue;
    tmp.resize(locals[s].size() * width);
    if (projection != nullptr) {
      shard_rel_[s]->ProjectRows(locals[s].data(), locals[s].size(),
                                 *projection, tmp.data(), ctx);
    } else {
      shard_rel_[s]->ProjectRowsAll(locals[s].data(), locals[s].size(),
                                    tmp.data(), ctx);
    }
    for (size_t j = 0; j < locals[s].size(); ++j) {
      std::copy(tmp.begin() + j * width, tmp.begin() + (j + 1) * width,
                out + rows[s][j] * width);
    }
    if (shard_fetches != nullptr) {
      (*shard_fetches)[s] += locals[s].size();
    }
  }
}

void ShardedRelation::ProjectRowsScatter(
    const Tid* tids, size_t n, const std::vector<size_t>& projection,
    Value* out, ExecutionContext* ctx,
    std::vector<uint64_t>* shard_fetches) const {
  ProjectScatterImpl(tids, n, &projection, projection.size(), out, ctx,
                     shard_fetches);
}

void ShardedRelation::ProjectRowsAllScatter(
    const Tid* tids, size_t n, Value* out, ExecutionContext* ctx,
    std::vector<uint64_t>* shard_fetches) const {
  ProjectScatterImpl(tids, n, nullptr, schema_.num_attributes(), out, ctx,
                     shard_fetches);
}

void ShardedRelation::CountStatement(ExecutionContext* ctx) const {
  if (stats_ != nullptr) {
    stats_->statements.fetch_add(1, std::memory_order_relaxed);
  }
  if (ctx != nullptr) ctx->ChargeStatement();
}

Result<ShardedDatabase> ShardedDatabase::Partition(const Database& source,
                                                   size_t num_shards,
                                                   bool with_replicas) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  ShardedDatabase sharded(num_shards);
  sharded.shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    sharded.shards_.push_back(
        std::make_unique<Database>(source.name() + "_shard" +
                                   std::to_string(s)));
  }
  if (with_replicas) {
    sharded.replicas_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      sharded.replicas_.push_back(
          std::make_unique<Database>(source.name() + "_shard" +
                                     std::to_string(s) + "_replica"));
    }
  }

  for (const std::string& name : source.RelationNames()) {
    auto src = source.GetRelation(name);
    if (!src.ok()) return src.status();
    const Relation& rel = **src;

    // Every shard gets the relation — schema, primary key and all — even
    // when no tuple routes to it: identical relation catalogs keep the
    // per-shard inverted indexes enumerating relations in the same order,
    // which the deterministic occurrence merge depends on.
    for (size_t s = 0; s < num_shards; ++s) {
      PRECIS_RETURN_NOT_OK(
          sharded.shards_[s]->CreateRelation(rel.schema()));
      if (with_replicas) {
        PRECIS_RETURN_NOT_OK(
            sharded.replicas_[s]->CreateRelation(rel.schema()));
      }
    }

    auto view = std::unique_ptr<ShardedRelation>(new ShardedRelation(
        rel.schema(), ShardRouter::RelationSeed(name),
        sharded.stats_.get()));
    view->shard_rel_.resize(num_shards, nullptr);
    if (with_replicas) view->replica_rel_.resize(num_shards, nullptr);
    for (size_t s = 0; s < num_shards; ++s) {
      auto shard_rel = sharded.shards_[s]->GetRelation(name);
      if (!shard_rel.ok()) return shard_rel.status();
      view->shard_rel_[s] = *shard_rel;
      if (with_replicas) {
        auto replica_rel = sharded.replicas_[s]->GetRelation(name);
        if (!replica_rel.ok()) return replica_rel.status();
        view->replica_rel_[s] = *replica_rel;
      }
    }
    view->local_to_global_.resize(num_shards);

    const size_t n = rel.num_tuples();
    view->owner_.reserve(n);
    view->local_of_.reserve(n);
    // Ascending global-tid order: each shard's local->global map comes out
    // strictly increasing, the property every deterministic merge uses.
    for (Tid g = 0; g < n; ++g) {
      size_t s = sharded.router_.ShardOf(view->seed_, g);
      auto local = view->shard_rel_[s]->Insert(rel.tuple(g));
      if (!local.ok()) return local.status();
      if (with_replicas) {
        // Same tuple, same routed order: the replica's local tids line up
        // with the primary's, so local_to_global_ serves both copies.
        auto replica_local = view->replica_rel_[s]->Insert(rel.tuple(g));
        if (!replica_local.ok()) return replica_local.status();
      }
      view->owner_.push_back(static_cast<uint32_t>(s));
      view->local_of_.push_back(*local);
      view->local_to_global_[s].push_back(g);
    }

    // Replicate the source's indexes so probe-vs-scan is a global property
    // the coordinator mirror can decide without the shards.
    for (const std::string& attr : rel.IndexedAttributes()) {
      for (size_t s = 0; s < num_shards; ++s) {
        PRECIS_RETURN_NOT_OK(view->shard_rel_[s]->CreateIndex(attr));
        if (with_replicas) {
          PRECIS_RETURN_NOT_OK(view->replica_rel_[s]->CreateIndex(attr));
        }
      }
    }
    sharded.views_.emplace(name, std::move(view));
  }

  sharded.foreign_keys_ = source.foreign_keys();
  if (num_shards == 1) {
    // A single shard holds the whole database; declaring the source's
    // foreign keys makes it a faithful standalone copy so the one-shard
    // configuration can delegate to the plain single-engine pipeline.
    for (const ForeignKey& fk : sharded.foreign_keys_) {
      PRECIS_RETURN_NOT_OK(sharded.shards_[0]->AddForeignKey(fk));
    }
  }
  return sharded;
}

Result<const ShardedRelation*> ShardedDatabase::GetView(
    const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> ShardedDatabase::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

size_t ShardedDatabase::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, view] : views_) total += view->num_tuples();
  return total;
}

Result<Tid> ShardedDatabase::Insert(const std::string& relation, Tuple tuple) {
  auto it = views_.find(relation);
  if (it == views_.end()) {
    return Status::NotFound("no relation named '" + relation + "'");
  }
  ShardedRelation& view = *it->second;
  const Tid global = view.num_tuples();
  const size_t owner = router_.ShardOf(view.seed_, global);

  // Cross-shard primary-key uniqueness: the owning shard's Insert checks
  // only its own tuples, so probe the others for the key value first.
  if (view.schema_.primary_key()) {
    const size_t pk = *view.schema_.primary_key();
    if (pk < tuple.size() && !tuple[pk].is_null()) {
      const std::string& pk_name = view.schema_.attribute(pk).name;
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (s == owner) continue;  // the owner's Insert enforces its own
        auto hits = view.shard_rel_[s]->LookupEquals(pk_name, tuple[pk]);
        if (!hits.ok()) return hits.status();
        if (!hits->empty()) {
          return Status::InvalidArgument(
              "duplicate primary key value for attribute '" + pk_name +
              "' in relation '" + relation + "'");
        }
      }
    }
  }

  auto local = view.has_replicas()
                   ? view.shard_rel_[owner]->Insert(tuple)
                   : view.shard_rel_[owner]->Insert(std::move(tuple));
  if (!local.ok()) return local.status();
  if (view.has_replicas()) {
    // Primary accepted (all constraint checks passed on identical data), so
    // the replica insert cannot fail differently; applying it keeps the two
    // copies in lockstep — same tuple, same local tid.
    auto replica_local = view.replica_rel_[owner]->Insert(std::move(tuple));
    if (!replica_local.ok()) return replica_local.status();
  }
  view.owner_.push_back(static_cast<uint32_t>(owner));
  view.local_of_.push_back(*local);
  view.local_to_global_[owner].push_back(global);
  return global;
}

}  // namespace precis
