// ShardRouter: stable tuple-id -> shard placement (DESIGN.md §15).
//
// Routing must be a pure function of (relation, global tid) so that datagen,
// later inserts, and index rebuilds land tuples on the same shard in every
// process and on every platform — the determinism suite partitions the same
// dataset repeatedly and expects identical placements. The router therefore
// avoids std::hash (implementation-defined) in favour of FNV-1a over the
// relation name and a splitmix64 finalizer over the tid.

#ifndef PRECIS_SHARD_SHARD_ROUTER_H_
#define PRECIS_SHARD_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "storage/relation.h"

namespace precis {

/// \brief Deterministic tuple-id hash partitioner.
class ShardRouter {
 public:
  explicit ShardRouter(size_t num_shards) : num_shards_(num_shards) {}

  size_t num_shards() const { return num_shards_; }

  /// FNV-1a over the relation name: a per-relation seed so two relations of
  /// equal size do not shard-align tuple-for-tuple.
  static uint64_t RelationSeed(const std::string& relation) {
    uint64_t h = 1469598103934665603ULL;
    for (char c : relation) {
      h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
      h *= 1099511628211ULL;
    }
    return h;
  }

  /// The shard owning global tuple id `tid` of the relation with seed
  /// `relation_seed` (splitmix64 finalizer: full-avalanche, branch-free).
  size_t ShardOf(uint64_t relation_seed, Tid tid) const {
    uint64_t z = (tid ^ relation_seed) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<size_t>(z % static_cast<uint64_t>(num_shards_));
  }

 private:
  size_t num_shards_;
};

}  // namespace precis

#endif  // PRECIS_SHARD_SHARD_ROUTER_H_
