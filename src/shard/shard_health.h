// Per-shard fault-domain health (DESIGN.md §17).
//
// ShardHealthTracker is the engine-lifetime state: one CircuitBreaker per
// shard plus a latency window per shard that derives the hedging delay
// (~p99 of recent sub-query latencies, clamped). ShardQueryFaultPlan is the
// per-query decision derived from it on the coordinator thread before any
// shard work starts: which shards participate, which are skipped (open
// circuit, or kShardSubquery probe failed after retries), and what injected
// stall each participating shard must serve.
//
// Determinism: the plan is decided shard-by-shard in ascending order on the
// coordinator thread, so the injector's per-(site, domain) check streams
// advance in a reproducible order for a reproducible query sequence. A
// permanently dead shard (latched kShardSubquery domain) is excluded on
// every query regardless of whether the breaker skipped it or the probe
// failed — which is why degraded answer bytes do not depend on breaker
// timing, only the telemetry does.

#ifndef PRECIS_SHARD_SHARD_HEALTH_H_
#define PRECIS_SHARD_SHARD_HEALTH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "common/retry.h"
#include "common/status.h"

namespace precis {

/// \brief Fault-domain tuning; member defaults are the serving defaults.
struct ShardHealthPolicy {
  CircuitBreakerPolicy breaker;
  /// Hedging delay bounds: the p99-derived delay is clamped into
  /// [hedge_min_delay_ns, hedge_max_delay_ns]; before the latency window
  /// has any samples, hedge_default_delay_ns is used.
  uint64_t hedge_min_delay_ns = 500'000;        // 0.5 ms
  uint64_t hedge_max_delay_ns = 50'000'000;     // 50 ms
  uint64_t hedge_default_delay_ns = 2'000'000;  // 2 ms
  /// Per-shard latency samples retained for the p99 estimate.
  size_t latency_window = 64;
};

/// \brief Engine-lifetime per-shard health: breakers, hedge-delay windows,
/// and lifetime counters. Thread-safe; shared by concurrent queries.
class ShardHealthTracker {
 public:
  explicit ShardHealthTracker(size_t num_shards,
                              ShardHealthPolicy policy = ShardHealthPolicy())
      : policy_(policy), rings_(num_shards) {
    breakers_.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      breakers_.push_back(std::make_unique<CircuitBreaker>(policy.breaker));
    }
  }

  size_t num_shards() const { return breakers_.size(); }
  const ShardHealthPolicy& policy() const { return policy_; }

  CircuitBreaker& breaker(size_t shard) { return *breakers_[shard]; }
  const CircuitBreaker& breaker(size_t shard) const {
    return *breakers_[shard];
  }

  /// Records one completed sub-query's wall latency for shard `shard`.
  void RecordLatency(size_t shard, uint64_t ns) {
    Ring& ring = rings_[shard];
    std::lock_guard<std::mutex> lock(ring.mu);
    if (ring.samples.size() < policy_.latency_window) {
      ring.samples.push_back(ns);
    } else {
      ring.samples[ring.next % policy_.latency_window] = ns;
    }
    ++ring.next;
  }

  /// The delay after which a sub-query to `shard` should hedge to the
  /// replica: ~p99 of the recent latency window, clamped into the policy
  /// bounds (the default before any sample lands).
  uint64_t HedgeDelayNs(size_t shard) const {
    uint64_t p99 = 0;
    {
      Ring& ring = rings_[shard];
      std::lock_guard<std::mutex> lock(ring.mu);
      if (ring.samples.empty()) return policy_.hedge_default_delay_ns;
      std::vector<uint64_t> sorted = ring.samples;
      std::sort(sorted.begin(), sorted.end());
      p99 = sorted[(sorted.size() * 99) / 100 >= sorted.size()
                       ? sorted.size() - 1
                       : (sorted.size() * 99) / 100];
    }
    return std::max(policy_.hedge_min_delay_ns,
                    std::min(policy_.hedge_max_delay_ns, p99));
  }

  /// Lifetime counters (exported via /metrics and shell `stats`).
  std::atomic<uint64_t> hedged_subqueries{0};  ///< replica hedges launched
  std::atomic<uint64_t> hedge_wins{0};         ///< hedges that beat primary
  std::atomic<uint64_t> shard_skips{0};        ///< per-query shard exclusions

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<uint64_t> samples;
    size_t next = 0;
  };

  ShardHealthPolicy policy_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  mutable std::vector<Ring> rings_;
};

/// \brief One query's fault-domain decisions, made up front on the
/// coordinator thread and read-only afterwards.
struct ShardQueryFaultPlan {
  std::vector<uint8_t> live;       ///< [num_shards]; 1 = participates
  std::vector<uint64_t> stall_ns;  ///< [num_shards]; injected stall to serve
  std::vector<uint32_t> skipped;   ///< excluded shard ids, ascending
  uint64_t probe_retries = 0;      ///< kShardSubquery probe retries performed
  uint64_t breaker_rejects = 0;    ///< shards skipped without probing
  ShardHealthTracker* health = nullptr;
  bool use_replicas = false;       ///< hedging possible (replicas exist)

  bool any_skipped() const { return !skipped.empty(); }
};

/// \brief Decides which shards this query contacts. Per shard, in ascending
/// order: an open breaker skips the shard outright (no probe, no injector
/// check); otherwise the kShardSubquery domain check runs under the retry
/// policy (the simulated "can we reach this shard" probe) and its outcome
/// feeds the breaker. A reachable shard then consults kShardTimeout for an
/// injected stall, which the shard's sub-query task serves later — an
/// *erroring* kShardTimeout schedule counts as a probe failure too.
inline ShardQueryFaultPlan DecideShardFaultPlan(size_t num_shards,
                                                ShardHealthTracker* health,
                                                ExecutionContext* ctx,
                                                bool has_replicas) {
  ShardQueryFaultPlan plan;
  plan.live.assign(num_shards, 1);
  plan.stall_ns.assign(num_shards, 0);
  plan.health = health;
  plan.use_replicas = has_replicas;
  FaultInjector* injector = ctx != nullptr ? ctx->fault_injector() : nullptr;
  const bool armed = injector != nullptr && injector->armed();
  for (uint32_t s = 0; s < num_shards; ++s) {
    CircuitBreaker* breaker =
        health != nullptr ? &health->breaker(s) : nullptr;
    if (breaker != nullptr && !breaker->Allow()) {
      plan.live[s] = 0;
      plan.skipped.push_back(s);
      ++plan.breaker_rejects;
      if (health != nullptr) {
        health->shard_skips.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    Status probe = Status::OK();
    if (armed) {
      probe = RetryWithBackoff(
          ctx->retry_policy(), ctx, FaultSite::kShardSubquery,
          [injector, s] {
            return injector->CheckDomain(FaultSite::kShardSubquery, s);
          },
          &plan.probe_retries);
      if (probe.ok()) {
        uint64_t stall = 0;
        Status timeout =
            injector->CheckDomain(FaultSite::kShardTimeout, s, &stall);
        if (!timeout.ok()) {
          probe = timeout;
        } else {
          plan.stall_ns[s] = stall;
        }
      }
    }
    if (probe.ok()) {
      if (breaker != nullptr) breaker->RecordSuccess();
    } else {
      if (breaker != nullptr) breaker->RecordFailure();
      plan.live[s] = 0;
      plan.skipped.push_back(s);
      if (health != nullptr) {
        health->shard_skips.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return plan;
}

}  // namespace precis

#endif  // PRECIS_SHARD_SHARD_HEALTH_H_
