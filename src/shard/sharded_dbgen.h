// Sharded result-database generation (DESIGN.md §15).
//
// ShardedResultDatabaseGenerator replays the sequential Fig. 5 control flow
// on one coordinator thread — exactly the discipline parallel_dbgen.cc
// proved out — while the physical data work (equality lookups, columnar
// row projection) scatters across the shard Databases through the shared
// TaskPool. The coordinator makes every output-shaping decision (acceptance
// order, duplicate handling, budget truncation via the simulated charge
// counter, fault/retry sequences) against ShardedRelation mirrors that
// charge the ExecutionContext in the single-engine order, so the emitted
// database and DbGenReport are byte-identical to the single-engine run for
// any shard count.

#ifndef PRECIS_SHARD_SHARDED_DBGEN_H_
#define PRECIS_SHARD_SHARDED_DBGEN_H_

#include <cstdint>
#include <vector>

#include "common/execution_context.h"
#include "common/result.h"
#include "precis/database_generator.h"
#include "precis/result_schema.h"
#include "shard/shard_health.h"
#include "shard/sharded_database.h"

namespace precis {

/// \brief Per-query scatter-gather telemetry: where the physical work
/// landed and what the deterministic merge cost. Never feeds back into
/// truncation decisions — budget authority stays with the coordinator's
/// simulated charge replay, because per-shard hard cutoffs would make
/// answers depend on the shard count (DESIGN.md §15).
struct ShardQueryStats {
  /// Wall seconds spent in per-edge scatter + ascending k-way merges.
  double merge_seconds = 0.0;
  /// Number of scatter-gather merge rounds (one per executed edge).
  uint64_t merge_events = 0;
  /// Per-shard physical sub-operations dispatched (one per shard per edge
  /// prefetch, one per chunk task that touched the shard).
  std::vector<uint64_t> subqueries;
  /// Per-shard physical charges: shard-side lookups plus tuples fetched.
  std::vector<uint64_t> charges;
  /// Per-shard peak prefetch scratch bytes: the largest single-edge
  /// posting buffer the scatter held for the shard.
  std::vector<uint64_t> scratch_bytes;
  /// The query's global access budget (0 = unlimited) and its even
  /// per-shard slice.
  uint64_t budget_total = 0;
  uint64_t budget_slice = 0;
  /// Sum over shards of the charges that exceeded the even slice — how
  /// much of the budget effectively rebalanced toward hot shards.
  uint64_t rebalanced_charges = 0;

  /// Fault-domain telemetry (DESIGN.md §17): shards this query's merge
  /// completed without, probe retries spent deciding that, shards skipped
  /// on an open breaker without probing, and the hedged sub-query ledger.
  std::vector<uint32_t> shards_skipped;
  uint64_t shard_probe_retries = 0;
  uint64_t breaker_rejects = 0;
  uint64_t hedged_subqueries = 0;
  uint64_t hedge_wins = 0;

  void Resize(size_t num_shards) {
    subqueries.assign(num_shards, 0);
    charges.assign(num_shards, 0);
    scratch_bytes.assign(num_shards, 0);
    shards_skipped.clear();
    shard_probe_retries = 0;
    breaker_rejects = 0;
    hedged_subqueries = 0;
    hedge_wins = 0;
  }
};

/// \brief Fig. 5 generator over a partitioned database.
class ShardedResultDatabaseGenerator {
 public:
  explicit ShardedResultDatabaseGenerator(const ShardedDatabase* source)
      : sharded_(source) {}

  /// Generates the result sub-database for `schema` from `seeds`, merging
  /// per-shard work deterministically. Output (database bytes, report,
  /// stop reason) is byte-identical to
  /// ResultDatabaseGenerator::Generate over the unpartitioned source.
  /// `shard_stats`, when given, receives the scatter-gather telemetry.
  ///
  /// `fault_plan`, when given, applies the query's fault-domain decisions
  /// (DESIGN.md §17): shards the plan skipped contribute nothing to any
  /// prefetch (their tuples are reported per relation as
  /// unavailable_tuples and the report carries shards_skipped), live
  /// shards serve their injected stall inside their prefetch task, and —
  /// when the plan allows replicas — a sub-query that exceeds the shard's
  /// hedging delay is re-issued against the shard's replica, first
  /// response wins. Because replicas are exact copies, hedging can change
  /// telemetry but never answer bytes.
  Result<Database> Generate(const ResultSchema& schema, const SeedTids& seeds,
                            const CardinalityConstraint& c,
                            const DbGenOptions& options,
                            ExecutionContext* ctx = nullptr,
                            ShardQueryStats* shard_stats = nullptr,
                            const ShardQueryFaultPlan* fault_plan = nullptr);

  const DbGenReport& last_report() const { return last_report_; }

 private:
  const ShardedDatabase* sharded_;
  DbGenReport last_report_;
};

}  // namespace precis

#endif  // PRECIS_SHARD_SHARDED_DBGEN_H_
