#include "shard/sharded_service.h"

#include <algorithm>
#include <utility>

namespace precis {

Result<std::unique_ptr<ShardedPrecisService>> ShardedPrecisService::Create(
    const ShardedPrecisEngine* engine, Options options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  if (options.response_time_target_seconds > 0 &&
      options.cost_params.PerTupleCost() <= 0) {
    return Status::InvalidArgument(
        "a response-time target needs positive cost parameters "
        "(Formula 3 divides by IndexTime + TupleTime)");
  }
  if (options.num_workers == 0) options.num_workers = 1;
  return std::unique_ptr<ShardedPrecisService>(
      new ShardedPrecisService(engine, std::move(options)));
}

ShardedPrecisService::ShardedPrecisService(const ShardedPrecisEngine* engine,
                                           Options options)
    : PrecisService(/*engine=*/nullptr, std::move(options)), engine_(engine) {
  subqueries_.assign(engine_->num_shards(), 0);
  charges_.assign(engine_->num_shards(), 0);
  scratch_peak_.assign(engine_->num_shards(), 0);
}

ShardedPrecisService::~ShardedPrecisService() {
  // Workers dispatch into this subclass; stop them before the members (and
  // the vtable slice) they reach through go away.
  Shutdown();
}

Result<std::shared_ptr<const PrecisAnswer>> ShardedPrecisService::AnswerQuery(
    const ServiceRequest& request, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx, std::shared_ptr<const std::string>* body_out) {
  ShardQueryStats stats;
  Result<std::shared_ptr<const PrecisAnswer>> answer = [&] {
    if (body_out == nullptr) {
      return engine_->AnswerShared(request.query, degree, cardinality,
                                   options, ctx, &stats);
    }
    auto rendered = engine_->AnswerSharedRendered(
        request.query, degree, cardinality, options, ctx, &stats);
    if (!rendered.ok()) {
      return Result<std::shared_ptr<const PrecisAnswer>>(rendered.status());
    }
    *body_out = std::move(rendered->body_json);
    return Result<std::shared_ptr<const PrecisAnswer>>(
        std::move(rendered->answer));
  }();
  {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    // Cache hits contribute a zero-work sample (Resize zeroed the vectors):
    // merge percentiles then honestly reflect what served queries cost.
    merge_times_.push_back(stats.merge_seconds);
    for (size_t s = 0; s < stats.subqueries.size() && s < subqueries_.size();
         ++s) {
      subqueries_[s] += stats.subqueries[s];
      charges_[s] += stats.charges[s];
      scratch_peak_[s] = std::max(scratch_peak_[s], stats.scratch_bytes[s]);
    }
    rebalanced_total_ += stats.rebalanced_charges;
    if (!stats.shards_skipped.empty()) ++degraded_queries_;
    skips_total_ += stats.shards_skipped.size();
    probe_retries_total_ += stats.shard_probe_retries;
    breaker_rejects_total_ += stats.breaker_rejects;
  }
  return answer;
}

PrecisService::Metrics ShardedPrecisService::metrics() const {
  Metrics snapshot = SnapshotCoreMetrics();

  std::vector<double> merges;
  {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    merges = merge_times_;
    snapshot.shards.resize(subqueries_.size());
    for (size_t s = 0; s < subqueries_.size(); ++s) {
      snapshot.shards[s].subqueries = subqueries_[s];
      snapshot.shards[s].charges = charges_[s];
      snapshot.shards[s].scratch_peak_bytes = scratch_peak_[s];
    }
    snapshot.shard_rebalanced_budget_total = rebalanced_total_;
    snapshot.shard_degraded_queries = degraded_queries_;
    snapshot.shard_skips_total = skips_total_;
    snapshot.shard_probe_retries_total = probe_retries_total_;
    snapshot.shard_breaker_rejects_total = breaker_rejects_total_;
  }
  // Sort outside the lock — same no-stall discipline as the base latency
  // percentiles (satellite fix this subclass inherits by construction).
  if (!merges.empty()) {
    std::sort(merges.begin(), merges.end());
    auto percentile = [&merges](double p) {
      double rank = p * static_cast<double>(merges.size() - 1);
      size_t lo = static_cast<size_t>(rank);
      if (lo + 1 >= merges.size()) return merges.back();
      double frac = rank - static_cast<double>(lo);
      return merges[lo] + frac * (merges[lo + 1] - merges[lo]);
    };
    snapshot.shard_merge_p50_seconds = percentile(0.50);
    snapshot.shard_merge_p99_seconds = percentile(0.99);
  }

  for (size_t s = 0; s < snapshot.shards.size(); ++s) {
    snapshot.shards[s].tuples = engine_->shard_tuples(s);
    snapshot.shards[s].token_cache = engine_->shard_partial_cache_stats(s);
    snapshot.token_cache += snapshot.shards[s].token_cache;
    if (engine_->num_shards() >= 2) {
      CircuitBreakerStats breaker = engine_->breaker_stats(s);
      snapshot.shards[s].breaker_state = BreakerStateToString(breaker.state);
      snapshot.shards[s].breaker_opened = breaker.opened_total;
      snapshot.shards[s].breaker_rejected = breaker.rejected_total;
      snapshot.shards[s].breaker_half_open_probes = breaker.half_open_probes;
      snapshot.shards[s].breaker_failures = breaker.failures_total;
    }
  }
  if (engine_->num_shards() >= 2) {
    const ShardHealthTracker& health = engine_->health();
    snapshot.hedged_subqueries_total =
        health.hedged_subqueries.load(std::memory_order_relaxed);
    snapshot.hedge_wins_total =
        health.hedge_wins.load(std::memory_order_relaxed);
  }
  snapshot.schema_cache = engine_->schema_cache_stats();
  snapshot.answer_cache = engine_->answer_cache_stats();
  snapshot.body_cache = engine_->body_cache_stats();
  return snapshot;
}

}  // namespace precis
