// ShardedPrecisService: PrecisService whose answer hook scatter-gathers
// across a ShardedPrecisEngine (DESIGN.md §15).
//
// Everything operational stays in the base class — worker pool, admission
// queue with load shedding, per-query ExecutionContext (deadline / budget /
// fault injector / retry policy), outcome metrics. This subclass only
// reroutes the one pipeline call to the sharded engine and folds each
// query's ShardQueryStats into per-shard serving counters that its
// metrics() override reports (merge-time percentiles, per-shard subquery
// and charge totals, rebalanced-budget total).

#ifndef PRECIS_SHARD_SHARDED_SERVICE_H_
#define PRECIS_SHARD_SHARDED_SERVICE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "service/precis_service.h"
#include "shard/sharded_engine.h"

namespace precis {

/// \brief Concurrent front end for ShardedPrecisEngine.
class ShardedPrecisService : public PrecisService {
 public:
  /// `engine` must outlive the service. Same option validation as the base
  /// factory. Workers start immediately; no job can be queued before this
  /// returns, so virtual dispatch on AnswerQuery is safe.
  static Result<std::unique_ptr<ShardedPrecisService>> Create(
      const ShardedPrecisEngine* engine, Options options);
  static Result<std::unique_ptr<ShardedPrecisService>> Create(
      const ShardedPrecisEngine* engine) {
    return Create(engine, Options());
  }

  /// Joins the workers before any member of this subclass is torn down
  /// (workers call the AnswerQuery override).
  ~ShardedPrecisService() override;

  /// Base snapshot plus the per-shard serving block: subqueries, charges,
  /// resident tuples, scratch peaks, partial-cache counters, merge-time
  /// p50/p99, and the rebalanced-budget total. Cache rows come from the
  /// sharded engine (token_cache aggregates every shard's partial cache).
  Metrics metrics() const override;

  const ShardedPrecisEngine* sharded_engine() const { return engine_; }

 protected:
  /// Scatter-gather through the sharded engine's shard-aware answer cache,
  /// then fold the query's ShardQueryStats into the serving counters.
  Result<std::shared_ptr<const PrecisAnswer>> AnswerQuery(
      const ServiceRequest& request, const DegreeConstraint& degree,
      const CardinalityConstraint& cardinality, const DbGenOptions& options,
      ExecutionContext* ctx,
      std::shared_ptr<const std::string>* body_out) override;

 private:
  ShardedPrecisService(const ShardedPrecisEngine* engine, Options options);

  const ShardedPrecisEngine* engine_;

  /// Guards the scatter-gather accumulators below (workers fold stats in;
  /// metrics() copies out, computing percentiles outside the lock — same
  /// discipline as the base latency history).
  mutable std::mutex shard_mutex_;
  std::vector<double> merge_times_;
  std::vector<uint64_t> subqueries_;
  std::vector<uint64_t> charges_;
  std::vector<uint64_t> scratch_peak_;
  uint64_t rebalanced_total_ = 0;
  /// Fault-domain serving totals (DESIGN.md §17), folded from each query's
  /// ShardQueryStats. Per-shard breaker snapshots come straight from the
  /// engine's ShardHealthTracker at metrics() time instead.
  uint64_t degraded_queries_ = 0;
  uint64_t skips_total_ = 0;
  uint64_t probe_retries_total_ = 0;
  uint64_t breaker_rejects_total_ = 0;
};

}  // namespace precis

#endif  // PRECIS_SHARD_SHARDED_SERVICE_H_
