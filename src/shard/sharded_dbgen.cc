// Sharded scatter-gather result-database generation (DESIGN.md §15).
//
// Structure mirrors parallel_dbgen.cc — the same PLAN / FETCH / MERGE split
// with the same simulated charge replay — with two substitutions:
//
//   * Lookups scatter: before each edge's strategy loop runs, one task per
//     shard prefetches every join key's shard-local postings (null context:
//     no fault checks, no coordinator charges) and the per-key lists merge
//     ascending into exactly the single-engine posting order. The
//     coordinator's strategy loop then *replays* each lookup against the
//     prefetched result — MirrorLookupCharges reproduces the probe/scan
//     charge and fault-check sequence Relation::LookupEquals would have
//     produced, and the retry wrapper consumes the same kJoinValueLookup
//     gate sequence as FaultyLookup — so the injector and the budget see a
//     single-engine run while the shards did the work in parallel.
//   * Chunks scatter: materialization tasks group a chunk's global tids by
//     owning shard and run each shard's columnar ProjectRows kernel,
//     scattering rows back into acceptance order. The context is charged
//     the same tuple-fetch total; per-shard fetch counts feed the budget
//     ledger (telemetry only — truncation authority never moves off the
//     coordinator, or answers would depend on the shard count).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/task_pool.h"
#include "precis/dbgen_common.h"
#include "shard/sharded_dbgen.h"
#include "sql/select.h"

namespace precis {

using dbgen_internal::DegradationFor;
using dbgen_internal::EmittedAttributeIndices;
using dbgen_internal::FaultsArmed;
using dbgen_internal::ForeignKeyHolds;
using dbgen_internal::IsToOne;
using dbgen_internal::RenderSeedSql;
using dbgen_internal::SimulateStatementOverhead;

namespace {

/// Accepted tids per materialization task (same tradeoff as
/// parallel_dbgen.cc: one consolidated simulated-I/O sleep per chunk, many
/// chunks to steal on large-c queries).
constexpr size_t kChunkTuples = 256;

/// Accepted-tid count above which join-key column extraction fans out.
constexpr size_t kParallelKeyExtraction = 4096;

/// Keys per parallel ascending-merge segment.
constexpr size_t kMergeSegmentKeys = 64;

/// One materialization task's input (tid snapshot) and output (projected
/// cells, row-major `count x width`, index-aligned with `tids`), both
/// arena-owned. Identical contract to parallel_dbgen.cc's chunk: the task
/// owns the cells until the group Wait hands them back to the merge.
struct MaterializedChunk {
  const Tid* tids = nullptr;
  size_t count = 0;
  size_t width = 0;        // attributes per row
  Value* cells = nullptr;  // count * width, row-major
};

/// Plan-side state of one result relation over its sharded source. Two
/// departures from parallel_dbgen's PlannedRelation, both pure speedups:
/// `seen` is a bitmap over global tids (the dup check is the hottest plan
/// operation), and arrival tags are only tracked when path-aware
/// propagation will actually read them.
struct PlannedShardRelation {
  const ShardedRelation* source = nullptr;
  std::vector<size_t> emitted;  // emitted attribute indices (sorted)
  bool identity = false;        // emitted == full schema order

  std::vector<Tid> accepted;    // sequential collection order
  std::vector<uint8_t> seen;    // bitmap over global tids
  bool track_arrivals = false;
  std::unordered_map<Tid, std::vector<const JoinEdge*>> arrivals;

  size_t next_chunk_start = 0;  // first accepted index not yet chunked
  std::vector<MaterializedChunk*> chunks;  // arena-owned, planner-ordered

  /// Seed tids may be out of range (the bounds check sits *after* the dup
  /// check, as in the sequential walk); an out-of-range tid was never
  /// accepted, so "not in the bitmap" is the right answer.
  bool Seen(Tid tid) const { return tid < seen.size() && seen[tid] != 0; }

  void Tag(Tid tid, const JoinEdge* arrival) {
    if (!track_arrivals) return;
    std::vector<const JoinEdge*>& tags = arrivals[tid];
    for (const JoinEdge* t : tags) {
      if (t == arrival) return;
    }
    tags.push_back(arrival);
  }
};

/// Same in-flight throttle as parallel_dbgen.cc's ThrottledGroup: at most
/// `limit` tasks of this query in the shared pool at once, excess chained
/// in by completing tasks. Duplicated rather than shared so the two
/// generators stay independently evolvable.
class ThrottledGroup {
 public:
  ThrottledGroup(TaskPool* pool, size_t limit)
      : group_(pool), limit_(std::max<size_t>(1, limit)) {}

  ~ThrottledGroup() {
    try {
      group_.Wait();
    } catch (...) {
      // Callers who care about task exceptions call Wait() themselves.
    }
  }

  void Run(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (in_flight_ >= limit_) {
        deferred_.push_back(std::move(fn));
        return;
      }
      ++in_flight_;
    }
    Launch(std::move(fn));
  }

  /// Waits for every submitted task (rethrows the first task exception).
  void Wait() { group_.Wait(); }

 private:
  void Launch(std::function<void()> fn) {
    group_.Run([this, fn = std::move(fn)]() mutable {
      try {
        fn();
      } catch (...) {
        OnDone();  // keep the deferred chain draining even on failure
        throw;
      }
      OnDone();
    });
  }

  void OnDone() {
    std::function<void()> next;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (deferred_.empty()) {
        --in_flight_;
        return;
      }
      next = std::move(deferred_.front());
      deferred_.pop_front();
    }
    Launch(std::move(next));
  }

  TaskPool::Group group_;
  size_t limit_;
  std::mutex mu_;
  std::deque<std::function<void()>> deferred_;
  size_t in_flight_ = 0;
};

/// Sequential JoinKeys over the sharded view: ordered distinct non-NULL
/// values of `attribute` over the accepted tuples, same collection order as
/// the single-engine pass. Above kParallelKeyExtraction accepted tids the
/// (uncharged, read-only) column reads fan out across the pool first; the
/// order-defining dedup stays sequential on the precomputed values, so the
/// key list is identical either way. Arrival tags are only read on the
/// coordinator thread.
Result<std::vector<Value>> PlanJoinKeys(
    const PlannedShardRelation& p, const RelationSchema& schema,
    const std::string& attribute,
    const std::set<const JoinEdge*>* allowed_arrivals, TaskPool* pool) {
  auto idx = schema.AttributeIndex(attribute);
  if (!idx.ok()) return idx.status();
  const size_t n = p.accepted.size();

  std::vector<Value> vals;
  if (n >= kParallelKeyExtraction) {
    vals.resize(n);
    TaskPool::Group extract(pool);
    const size_t seg = kParallelKeyExtraction / 2;
    for (size_t begin = 0; begin < n; begin += seg) {
      const size_t end = std::min(n, begin + seg);
      extract.Run([&, begin, end] {
        for (size_t i = begin; i < end; ++i) {
          vals[i] = p.source->ColumnValue(p.accepted[i], *idx);
        }
      });
    }
    extract.Wait();
  }

  std::vector<Value> keys;
  std::unordered_set<Value, ValueHash> dedup;
  for (size_t i = 0; i < n; ++i) {
    const Tid tid = p.accepted[i];
    if (allowed_arrivals != nullptr) {
      auto tags = p.arrivals.find(tid);
      bool feeds = false;
      if (tags != p.arrivals.end()) {
        for (const JoinEdge* t : tags->second) {
          if (allowed_arrivals->count(t) > 0) {
            feeds = true;
            break;
          }
        }
      }
      if (!feeds) continue;
    }
    const Value v =
        vals.empty() ? p.source->ColumnValue(tid, *idx) : vals[i];
    if (v.is_null()) continue;
    if (dedup.insert(v).second) keys.push_back(v);
  }
  return keys;
}

}  // namespace

Result<Database> ShardedResultDatabaseGenerator::Generate(
    const ResultSchema& schema, const SeedTids& seeds,
    const CardinalityConstraint& c, const DbGenOptions& options,
    ExecutionContext* ctx, ShardQueryStats* shard_stats,
    const ShardQueryFaultPlan* fault_plan) {
  last_report_ = DbGenReport{};
  const SchemaGraph& graph = schema.graph();
  const size_t num_shards = sharded_->num_shards();

  // Resolve sharded views once (same order and error surface as the
  // single-engine path's GetRelation loop).
  std::map<RelationNodeId, const ShardedRelation*> views;
  for (RelationNodeId rel : schema.relations()) {
    auto v = sharded_->GetView(graph.relation_name(rel));
    if (!v.ok()) return v.status();
    views[rel] = *v;
  }

  std::map<RelationNodeId, PlannedShardRelation> planned;
  for (RelationNodeId rel : schema.relations()) {
    PlannedShardRelation& p = planned[rel];
    p.source = views[rel];
    p.emitted =
        EmittedAttributeIndices(schema, rel, options.include_join_attributes);
    p.identity = IsIdentityProjection(p.emitted,
                                      p.source->schema().num_attributes());
    p.seen.assign(p.source->num_tuples(), 0);
    p.track_arrivals = options.path_aware_propagation;
  }
  size_t total = 0;

  // Per-shard physical ledger. The prefetch and plan run on this thread
  // (plain counters); chunk tasks run on the pool (atomic cells, declared
  // before the task group so they outlive every task).
  std::vector<uint64_t> shard_lookups(num_shards, 0);
  std::vector<uint64_t> shard_subqueries(num_shards, 0);
  std::vector<uint64_t> shard_scratch_peak(num_shards, 0);
  std::unique_ptr<std::atomic<uint64_t>[]> shard_fetch_cells(
      new std::atomic<uint64_t>[num_shards]);
  std::unique_ptr<std::atomic<uint64_t>[]> shard_chunk_cells(
      new std::atomic<uint64_t>[num_shards]);
  for (size_t s = 0; s < num_shards; ++s) {
    shard_fetch_cells[s].store(0, std::memory_order_relaxed);
    shard_chunk_cells[s].store(0, std::memory_order_relaxed);
  }
  double merge_seconds = 0.0;
  uint64_t merge_events = 0;

  // Per-query arena for tid snapshots and chunk cell buffers; declared
  // before the task group so the group's draining destructor always runs
  // before the memory its tasks write into goes away.
  Arena local_arena;
  Arena* arena = ctx != nullptr ? &ctx->arena() : &local_arena;

  TaskPool* pool = options.pool != nullptr ? options.pool : TaskPool::Shared();
  // Chunk throttle: at least one slot per shard, so a sharded query can
  // keep every shard's columnar kernel busy even at parallelism=1 default.
  ThrottledGroup group(pool,
                       std::max<size_t>(options.parallelism, num_shards));

  const uint64_t latency_ns = options.simulated_access_latency_ns;

  // --- Stop logic: identical replay to parallel_dbgen.cc ------------------
  const uint64_t budget = ctx != nullptr ? ctx->access_budget() : 0;
  uint64_t sim_charges = 0;
  auto plan_stopped = [&]() -> bool {
    if (ctx == nullptr) return false;
    if (ctx->stop_reason() != StopReason::kNone) return true;
    if (ctx->cancelled()) {
      ctx->LatchStop(StopReason::kCancelled);
      return true;
    }
    if (budget != 0 && sim_charges >= budget) {
      ctx->LatchStop(StopReason::kAccessBudgetExhausted);
      return true;
    }
    auto remaining = ctx->RemainingSeconds();
    if (remaining.has_value() && *remaining <= 0.0) {
      ctx->LatchStop(StopReason::kDeadlineExceeded);
      return true;
    }
    return false;
  };

  auto mark_truncated = [&](RelationNodeId rel) {
    const std::string& name = graph.relation_name(rel);
    auto& t = last_report_.truncated_relations;
    if (std::find(t.begin(), t.end(), name) == t.end()) t.push_back(name);
  };

  // Fault injection: all fault decisions stay on this coordinator thread,
  // and the shard-side prefetch/chunk tasks never consult the injector, so
  // the check sequence is the single-engine sequence (DESIGN.md §12, §15).
  const bool faults = FaultsArmed(ctx);
  last_report_.fault_tainted = faults;
  auto degradation_for = [&](RelationNodeId rel) -> RelationDegradation& {
    return DegradationFor(last_report_.degradation, graph.relation_name(rel));
  };
  auto sim_fetch_check = [&](RelationNodeId rel) -> bool {
    if (!faults) return true;
    uint64_t r = 0;
    Status fs = CheckFaultWithRetry(ctx, FaultSite::kTupleFetch,
                                    ctx->retry_policy(), &r);
    if (r > 0) degradation_for(rel).retries += r;
    if (fs.ok()) return true;
    ++degradation_for(rel).dropped_tuples;
    return false;
  };

  // Shard-outage accounting (DESIGN.md §17): shards the query's fault plan
  // excluded are recorded up front — the skip happened before any edge ran
  // — along with each relation's tuples resident on them (an upper bound on
  // what the outage can cost that relation). Entry order is the schema's
  // relation order, deterministic for a fixed plan.
  if (fault_plan != nullptr && fault_plan->any_skipped()) {
    last_report_.degradation.shards_skipped = fault_plan->skipped;
    last_report_.degradation.shards_total =
        static_cast<uint32_t>(num_shards);
    for (RelationNodeId rel : schema.relations()) {
      uint64_t unavailable = 0;
      for (uint32_t s : fault_plan->skipped) {
        unavailable += views[rel]->shard_tuples(s);
      }
      if (unavailable > 0) {
        degradation_for(rel).unavailable_tuples += unavailable;
      }
    }
  }
  uint64_t hedged_total = 0;
  uint64_t hedge_wins_total = 0;

  // Chunk spawner: identical boundaries to parallel_dbgen.cc (a pure
  // function of the accepted sequence), but materialization scatters each
  // chunk across the owning shards' columnar kernels.
  auto spawn_chunks = [&](PlannedShardRelation& p, bool flush) {
    while (p.accepted.size() - p.next_chunk_start >= kChunkTuples ||
           (flush && p.accepted.size() > p.next_chunk_start)) {
      size_t begin = p.next_chunk_start;
      size_t count = std::min(kChunkTuples, p.accepted.size() - begin);
      p.next_chunk_start = begin + count;
      auto* chunk = new (arena->Allocate(sizeof(MaterializedChunk),
                                         alignof(MaterializedChunk)))
          MaterializedChunk();
      chunk->count = count;
      chunk->width = p.identity ? p.source->schema().num_attributes()
                                : p.emitted.size();
      Tid* tids = arena->AllocateArray<Tid>(count);
      std::copy(p.accepted.begin() + begin, p.accepted.begin() + begin + count,
                tids);
      chunk->tids = tids;
      chunk->cells = arena->AllocateArray<Value>(count * chunk->width);
      const ShardedRelation* src = p.source;
      const std::vector<size_t>* emitted = &p.emitted;  // stable (node map)
      const bool identity = p.identity;
      std::atomic<uint64_t>* fetch_cells = shard_fetch_cells.get();
      std::atomic<uint64_t>* chunk_cells = shard_chunk_cells.get();
      p.chunks.push_back(chunk);
      group.Run([chunk, src, emitted, identity, latency_ns, ctx, fetch_cells,
                 chunk_cells] {
        if (latency_ns != 0) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(
              latency_ns * static_cast<uint64_t>(chunk->count)));
        }
        std::vector<uint64_t> fetches(src->num_shards(), 0);
        if (identity) {
          src->ProjectRowsAllScatter(chunk->tids, chunk->count, chunk->cells,
                                     ctx, &fetches);
        } else {
          src->ProjectRowsScatter(chunk->tids, chunk->count, *emitted,
                                  chunk->cells, ctx, &fetches);
        }
        for (size_t s = 0; s < fetches.size(); ++s) {
          if (fetches[s] == 0) continue;
          fetch_cells[s].fetch_add(fetches[s], std::memory_order_relaxed);
          chunk_cells[s].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  };

  auto accept = [&](PlannedShardRelation& p, Tid tid,
                    const JoinEdge* arrival) {
    p.Tag(tid, arrival);
    p.seen[tid] = 1;
    p.accepted.push_back(tid);
    ++total;
    spawn_chunks(p, /*flush=*/false);
  };

  // --- Step 1: seed tuples (sigma_Tids), NaiveQ-limited -------------------
  for (const auto& [rel, tids] : seeds) {
    if (schema.relations().count(rel) == 0) {
      return Status::InvalidArgument("seed relation '" +
                                     graph.relation_name(rel) +
                                     "' is not part of the result schema");
    }
    if (plan_stopped()) {
      mark_truncated(rel);
      continue;
    }
    const ShardedRelation& source = *views[rel];
    source.CountStatement(ctx);  // one sigma_Tids query per seed relation
    SimulateStatementOverhead(options.statement_overhead_ns);
    PlannedShardRelation& p = planned[rel];
    if (options.trace_sql) {
      last_report_.sql_trace.push_back(
          RenderSeedSql(source.schema(), p.emitted, tids));
    }
    ArenaVector<Tid> ordered_tids{ArenaAllocator<Tid>(arena)};
    ordered_tids.assign(tids.begin(), tids.end());
    if (options.tuple_weights != nullptr) {
      const std::string& rel_name = graph.relation_name(rel);
      std::stable_sort(ordered_tids.begin(), ordered_tids.end(),
                       [&](Tid a, Tid b) {
                         return options.tuple_weights->Weight(rel_name, a) >
                                options.tuple_weights->Weight(rel_name, b);
                       });
    }
    for (Tid tid : ordered_tids) {
      if (p.Seen(tid)) continue;
      if (plan_stopped()) {
        mark_truncated(rel);
        break;
      }
      std::optional<size_t> b = c.Budget(p.accepted.size(), total);
      if (b.has_value() && *b == 0) {
        mark_truncated(rel);
        break;
      }
      if (tid >= source.num_tuples()) {
        // Byte-same status text as Relation::Get's bounds failure.
        return Status::OutOfRange(
            "tid " + std::to_string(tid) + " out of range for relation '" +
            source.name() + "' with " + std::to_string(source.num_tuples()) +
            " tuples");
      }
      if (!sim_fetch_check(rel)) continue;
      sim_charges += 1;  // the sequential seed Get
      accept(p, tid, nullptr);
    }
  }

  // Path-aware propagation feeders (identical to the sequential pass).
  std::map<const JoinEdge*, std::set<const JoinEdge*>> feeders;
  if (options.path_aware_propagation) {
    for (const Path& path : schema.projection_paths()) {
      const std::vector<const JoinEdge*>& joins = path.joins();
      for (size_t i = 0; i < joins.size(); ++i) {
        feeders[joins[i]].insert(i == 0 ? nullptr : joins[i - 1]);
      }
    }
  }

  // --- Step 2: weight-ordered edge schedule with postponement -------------
  std::map<RelationNodeId, int> pending;
  for (RelationNodeId rel : schema.relations()) {
    pending[rel] = schema.in_degree(rel);
  }
  std::unordered_set<const JoinEdge*> executed;

  while (!plan_stopped() && executed.size() < schema.join_edges().size()) {
    const JoinEdge* next = nullptr;
    bool next_applicable = false;
    for (const JoinEdge* e : schema.join_edges()) {
      if (executed.count(e) > 0) continue;
      bool applicable = pending[e->from] == 0;
      bool better;
      if (next == nullptr) {
        better = true;
      } else if (applicable != next_applicable) {
        better = applicable;
      } else {
        better = e->weight > next->weight;
      }
      if (better) {
        next = e;
        next_applicable = applicable;
      }
    }
    const JoinEdge& edge = *next;
    const ShardedRelation& to_view = *views[edge.to];
    const RelationSchema& from_schema = graph.relation_schema(edge.from);
    const RelationSchema& to_schema = graph.relation_schema(edge.to);

    const std::set<const JoinEdge*>* allowed = nullptr;
    if (options.path_aware_propagation) {
      allowed = &feeders[&edge];
    }
    auto keys = PlanJoinKeys(planned[edge.from], from_schema,
                             edge.from_attribute, allowed, pool);
    if (!keys.ok()) return keys.status();

    SubsetStrategy strategy = options.strategy;
    if (strategy == SubsetStrategy::kAuto) {
      strategy = IsToOne(edge, to_schema) ? SubsetStrategy::kNaiveQ
                                          : SubsetStrategy::kRoundRobin;
    }

    PlannedShardRelation& col = planned[edge.to];

    // --- Scatter: prefetch every key's postings from every shard ---------
    //
    // Shard-local lookups carry no context (no fault checks, no coordinator
    // charges); per-key lists then k-way merge into the exact ascending
    // global posting order Relation::LookupEquals would return. The
    // strategy loop below replays each lookup against merged[k]. Keys the
    // replay never reaches (stop mid-edge) were prefetched anyway — that
    // inflates shard-side physical stats, never the query's charges.
    std::vector<std::vector<Tid>> merged(keys->size());
    Status prefetch_status = Status::OK();
    {
      const auto merge_start = std::chrono::steady_clock::now();
      const bool hedging = fault_plan != nullptr && fault_plan->use_replicas &&
                           fault_plan->health != nullptr &&
                           to_view.has_replicas();
      ShardHealthTracker* health =
          fault_plan != nullptr ? fault_plan->health : nullptr;

      // Per-shard hedged fetch state: the primary and the (optional) hedged
      // replica sub-query race for the winner CAS; the loser's buffers are
      // never read. A stalled primary sleeps in ~1ms slices and checks
      // cancel_primary so a replica win unblocks the pool thread quickly.
      struct ShardFetch {
        std::vector<std::vector<Tid>> primary;
        std::vector<std::vector<Tid>> replica;
        Status primary_status;
        Status replica_status;
        std::atomic<int> winner{-1};  // -1 pending, 0 primary, 1 replica
        std::atomic<bool> cancel_primary{false};
      };
      std::unique_ptr<ShardFetch[]> fetches(new ShardFetch[num_shards]);
      std::mutex done_mu;
      std::condition_variable done_cv;
      std::vector<uint8_t> done(num_shards, 0);
      auto mark_done = [&](size_t s) {
        {
          std::lock_guard<std::mutex> lock(done_mu);
          done[s] = 1;
        }
        done_cv.notify_all();
      };

      std::vector<std::vector<std::vector<Tid>>> per_shard(num_shards);
      std::vector<Status> shard_status(num_shards, Status::OK());
      TaskPool::Group prefetch(pool);
      for (size_t s = 0; s < num_shards; ++s) {
        per_shard[s].resize(keys->size());
        if (fault_plan != nullptr && fault_plan->live[s] == 0) {
          continue;  // skipped shard: empty postings, no sub-query
        }
        const uint64_t stall =
            fault_plan != nullptr ? fault_plan->stall_ns[s] : 0;
        ShardFetch* fetch = &fetches[s];
        prefetch.Run([&, s, stall, fetch] {
          if (stall > 0) {
            uint64_t slept = 0;
            while (slept < stall) {
              if (fetch->cancel_primary.load(std::memory_order_acquire)) {
                return;  // lost the hedge; buffers never read
              }
              const uint64_t slice =
                  std::min<uint64_t>(1'000'000, stall - slept);
              std::this_thread::sleep_for(std::chrono::nanoseconds(slice));
              slept += slice;
            }
          }
          fetch->primary.resize(keys->size());
          for (size_t k = 0; k < keys->size(); ++k) {
            auto r =
                to_view.ShardLookupGlobal(s, edge.to_attribute, (*keys)[k]);
            if (!r.ok()) {
              fetch->primary_status = r.status();
              break;
            }
            fetch->primary[k] = std::move(*r);
          }
          int expected = -1;
          if (fetch->winner.compare_exchange_strong(
                  expected, 0, std::memory_order_acq_rel)) {
            if (health != nullptr) {
              health->RecordLatency(
                  s, static_cast<uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - merge_start)
                             .count()));
            }
            mark_done(s);
          }
        });
      }

      // Gather, shard by shard: a live shard that outlives its hedging
      // delay gets the identical sub-query re-issued against its replica
      // (exact copy: same bytes either way), first response wins.
      for (size_t s = 0; s < num_shards; ++s) {
        if (fault_plan != nullptr && fault_plan->live[s] == 0) continue;
        ShardFetch* fetch = &fetches[s];
        std::unique_lock<std::mutex> lock(done_mu);
        if (hedging && !done[s]) {
          const uint64_t delay = health->HedgeDelayNs(s);
          const bool finished =
              done_cv.wait_for(lock, std::chrono::nanoseconds(delay),
                               [&] { return done[s] != 0; });
          if (!finished) {
            lock.unlock();
            ++hedged_total;
            health->hedged_subqueries.fetch_add(1, std::memory_order_relaxed);
            prefetch.Run([&, s, fetch] {
              fetch->replica.resize(keys->size());
              for (size_t k = 0; k < keys->size(); ++k) {
                auto r = to_view.ReplicaLookupGlobal(s, edge.to_attribute,
                                                     (*keys)[k]);
                if (!r.ok()) {
                  fetch->replica_status = r.status();
                  break;
                }
                fetch->replica[k] = std::move(*r);
              }
              int expected = -1;
              if (fetch->winner.compare_exchange_strong(
                      expected, 1, std::memory_order_acq_rel)) {
                fetch->cancel_primary.store(true, std::memory_order_release);
                if (health != nullptr) {
                  health->RecordLatency(
                      s,
                      static_cast<uint64_t>(
                          std::chrono::duration_cast<
                              std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - merge_start)
                              .count()));
                }
                mark_done(s);
              }
            });
            lock.lock();
          }
        }
        done_cv.wait(lock, [&] { return done[s] != 0; });
        lock.unlock();
        if (fetch->winner.load(std::memory_order_acquire) == 1) {
          ++hedge_wins_total;
          health->hedge_wins.fetch_add(1, std::memory_order_relaxed);
          per_shard[s] = std::move(fetch->replica);
          shard_status[s] = fetch->replica_status;
        } else {
          per_shard[s] = std::move(fetch->primary);
          shard_status[s] = fetch->primary_status;
        }
      }
      prefetch.Wait();  // drains hedged losers (cancel unblocks stalls)

      for (size_t s = 0; s < num_shards; ++s) {
        if (fault_plan != nullptr && fault_plan->live[s] == 0) continue;
        shard_lookups[s] += keys->size();
        shard_subqueries[s] += 1;
        uint64_t bytes = 0;
        for (const std::vector<Tid>& list : per_shard[s]) {
          bytes += list.size() * sizeof(Tid);
        }
        shard_scratch_peak[s] = std::max(shard_scratch_peak[s], bytes);
        if (prefetch_status.ok() && !shard_status[s].ok()) {
          prefetch_status = shard_status[s];
        }
      }
      if (prefetch_status.ok()) {
        auto merge_keys = [&](size_t k_begin, size_t k_end) {
          for (size_t k = k_begin; k < k_end; ++k) {
            std::vector<std::vector<Tid>> lists(num_shards);
            for (size_t s = 0; s < num_shards; ++s) {
              lists[s] = std::move(per_shard[s][k]);
            }
            merged[k] = MergeAscendingTids(std::move(lists));
          }
        };
        if (keys->size() > kMergeSegmentKeys) {
          TaskPool::Group merging(pool);
          for (size_t b = 0; b < keys->size(); b += kMergeSegmentKeys) {
            const size_t e = std::min(keys->size(), b + kMergeSegmentKeys);
            merging.Run([&merge_keys, b, e] { merge_keys(b, e); });
          }
          merging.Wait();
        } else {
          merge_keys(0, keys->size());
        }
      }
      merge_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - merge_start)
                           .count();
      merge_events += 1;
    }

    // Replays one (possibly retried) single-engine lookup for key index
    // `ki` against the prefetched merge: same charge order, same fault
    // gates, same result bytes. The merged list is only consumed on the
    // successful attempt, so retries re-deliver it intact.
    auto replay_lookup = [&](size_t ki,
                             uint64_t* retries) -> Result<std::vector<Tid>> {
      if (!faults) {
        PRECIS_RETURN_NOT_OK(
            to_view.MirrorLookupCharges(edge.to_attribute, ctx));
        PRECIS_RETURN_NOT_OK(prefetch_status);
        return std::move(merged[ki]);
      }
      return RetryWithBackoff(
          ctx->retry_policy(), ctx, FaultSite::kJoinValueLookup,
          [&]() -> Result<std::vector<Tid>> {
            PRECIS_RETURN_NOT_OK(ctx->CheckFault(FaultSite::kJoinValueLookup));
            PRECIS_RETURN_NOT_OK(
                to_view.MirrorLookupCharges(edge.to_attribute, ctx));
            PRECIS_RETURN_NOT_OK(prefetch_status);
            return std::move(merged[ki]);
          },
          retries);
    };

    if (options.trace_sql) {
      std::vector<size_t> display = EmittedAttributeIndices(
          schema, edge.to, options.include_join_attributes);
      if (strategy == SubsetStrategy::kRoundRobin &&
          options.tuple_weights == nullptr) {
        for (const Value& key : *keys) {
          last_report_.sql_trace.push_back(RenderInListSql(
              to_schema, edge.to_attribute, {key}, display, std::nullopt));
        }
      } else {
        std::optional<size_t> limit;
        std::optional<size_t> b = c.Budget(col.accepted.size(), total);
        if (strategy == SubsetStrategy::kNaiveQ &&
            options.tuple_weights == nullptr && b.has_value()) {
          limit = b;
        }
        last_report_.sql_trace.push_back(RenderInListSql(
            to_schema, edge.to_attribute, *keys, display, limit));
      }
    }

    // Mirror of the sequential try_add, on tids (same as parallel_dbgen).
    auto plan_try_add = [&](Tid tid) -> bool {
      if (col.Seen(tid)) {
        col.Tag(tid, &edge);
        return true;
      }
      if (plan_stopped()) {
        mark_truncated(edge.to);
        return false;
      }
      std::optional<size_t> b = c.Budget(col.accepted.size(), total);
      if (b.has_value() && *b == 0) {
        mark_truncated(edge.to);
        return false;
      }
      accept(col, tid, &edge);
      return true;
    };

    if (options.tuple_weights != nullptr) {
      // Ranked selection (same replay as parallel_dbgen.cc).
      const std::string& to_name = graph.relation_name(edge.to);
      to_view.CountStatement(ctx);
      SimulateStatementOverhead(options.statement_overhead_ns);
      ArenaVector<Tid> candidates{ArenaAllocator<Tid>(arena)};
      std::unordered_set<Tid> candidate_seen;
      for (size_t ki = 0; ki < keys->size(); ++ki) {
        if (plan_stopped()) break;
        uint64_t r = 0;
        auto tids = replay_lookup(ki, &r);
        if (r > 0) degradation_for(edge.to).retries += r;
        if (!tids.ok()) {
          if (tids.status().IsUnavailable()) {
            ++degradation_for(edge.to).failed_lookups;
            continue;
          }
          return tids.status();
        }
        sim_charges += 1;  // the probe (or fallback scan)
        for (Tid tid : *tids) {
          if (col.Seen(tid)) continue;
          if (candidate_seen.insert(tid).second) candidates.push_back(tid);
        }
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](Tid a, Tid b) {
                         return options.tuple_weights->Weight(to_name, a) >
                                options.tuple_weights->Weight(to_name, b);
                       });
      for (Tid tid : candidates) {
        if (!sim_fetch_check(edge.to)) continue;
        sim_charges += 1;  // the sequential candidate Get
        if (!plan_try_add(tid)) break;
      }
    } else if (strategy == SubsetStrategy::kNaiveQ) {
      // One IN-list query, kept up to the budget in retrieval order.
      to_view.CountStatement(ctx);
      SimulateStatementOverhead(options.statement_overhead_ns);
      bool budget_open = true;
      for (size_t ki = 0; ki < keys->size(); ++ki) {
        if (!budget_open) break;
        uint64_t r = 0;
        auto tids = replay_lookup(ki, &r);
        if (r > 0) degradation_for(edge.to).retries += r;
        if (!tids.ok()) {
          if (tids.status().IsUnavailable()) {
            ++degradation_for(edge.to).failed_lookups;
            continue;
          }
          return tids.status();
        }
        sim_charges += 1;  // the probe (or fallback scan)
        for (Tid tid : *tids) {
          if (!sim_fetch_check(edge.to)) continue;
          sim_charges += 1;  // the sequential Get, duplicates included
          if (!plan_try_add(tid)) {
            budget_open = false;
            break;
          }
        }
      }
    } else {
      // RoundRobin: one scan per key, then one tuple per open scan per
      // round (PerValueScanSet parity, as in parallel_dbgen.cc).
      std::vector<std::vector<Tid>> scans;
      scans.reserve(keys->size());
      uint64_t rr_retries = 0;
      uint64_t rr_failed = 0;
      uint64_t rr_dropped = 0;
      for (size_t ki = 0; ki < keys->size(); ++ki) {
        if (plan_stopped()) {
          scans.emplace_back();
          continue;
        }
        to_view.CountStatement(ctx);  // one cursor per probe value
        auto tids = replay_lookup(ki, &rr_retries);
        if (!tids.ok()) {
          if (tids.status().IsUnavailable()) {
            ++rr_failed;
            scans.emplace_back();
            continue;
          }
          return tids.status();
        }
        sim_charges += 1;  // the probe (or fallback scan)
        scans.push_back(std::move(*tids));
      }
      SimulateStatementOverhead(options.statement_overhead_ns *
                                static_cast<uint64_t>(keys->size()));
      std::vector<size_t> positions(scans.size(), 0);
      auto all_closed = [&] {
        for (size_t i = 0; i < scans.size(); ++i) {
          if (positions[i] < scans[i].size()) return false;
        }
        return true;
      };
      bool budget_open = true;
      while (budget_open && !all_closed()) {
        for (size_t i = 0; i < scans.size(); ++i) {
          if (positions[i] >= scans[i].size()) continue;
          Tid tid = scans[i][positions[i]++];
          if (faults) {
            Status fs = CheckFaultWithRetry(ctx, FaultSite::kTupleFetch,
                                            ctx->retry_policy(), &rr_retries);
            if (!fs.ok()) {
              ++rr_dropped;
              continue;
            }
          }
          sim_charges += 1;  // PerValueScanSet::Next's Get
          if (!plan_try_add(tid)) {
            budget_open = false;
            break;
          }
        }
      }
      if (faults && (rr_retries > 0 || rr_failed > 0 || rr_dropped > 0)) {
        RelationDegradation& deg = degradation_for(edge.to);
        deg.retries += rr_retries;
        deg.failed_lookups += rr_failed;
        deg.dropped_tuples += rr_dropped;
      }
    }

    --pending[edge.to];
    executed.insert(&edge);
    last_report_.executed_edges.push_back(graph.relation_name(edge.from) +
                                          " -> " +
                                          graph.relation_name(edge.to));
  }

  // --- Merge barrier: flush residual chunks, drain materialization --------
  for (auto& [rel, p] : planned) {
    spawn_chunks(p, /*flush=*/true);
  }
  group.Wait();

  // --- Step 3: emit (per-relation fan-out, deterministic content) ---------
  Database result("precis_result");
  std::vector<RelationNodeId> rel_order(schema.relations().begin(),
                                        schema.relations().end());
  std::vector<Relation*> out_relations(rel_order.size(), nullptr);
  for (size_t i = 0; i < rel_order.size(); ++i) {
    RelationNodeId rel = rel_order[i];
    const RelationSchema& src_schema = graph.relation_schema(rel);
    const PlannedShardRelation& p = planned[rel];

    std::vector<AttributeSchema> out_attrs;
    out_attrs.reserve(p.emitted.size());
    for (size_t idx : p.emitted) out_attrs.push_back(src_schema.attribute(idx));
    RelationSchema out_schema(src_schema.name(), std::move(out_attrs));
    if (src_schema.primary_key()) {
      const std::string& pk_name =
          src_schema.attribute(*src_schema.primary_key()).name;
      if (out_schema.HasAttribute(pk_name)) {
        PRECIS_RETURN_NOT_OK(out_schema.SetPrimaryKey(pk_name));
      }
    }
    PRECIS_RETURN_NOT_OK(result.CreateRelation(std::move(out_schema)));
    auto out_relation = result.GetRelation(src_schema.name());
    if (!out_relation.ok()) return out_relation.status();
    out_relations[i] = *out_relation;
  }

  std::vector<Status> insert_status(rel_order.size(), Status::OK());
  for (size_t i = 0; i < rel_order.size(); ++i) {
    PlannedShardRelation* p = &planned[rel_order[i]];
    Relation* out = out_relations[i];
    Status* slot = &insert_status[i];
    group.Run([p, out, slot] {
      for (const MaterializedChunk* chunk : p->chunks) {
        for (size_t r = 0; r < chunk->count; ++r) {
          const Value* row = chunk->cells + r * chunk->width;
          auto tid = out->Insert(Tuple(row, row + chunk->width));
          if (!tid.ok()) {
            *slot = tid.status();
            return;
          }
        }
      }
    });
  }
  group.Wait();
  for (const Status& s : insert_status) {
    PRECIS_RETURN_NOT_OK(s);
  }

  // --- Step 4: foreign-key carry-over (per-FK fan-out) --------------------
  struct FkCheck {
    const ForeignKey* fk;
    bool holds = false;
  };
  std::vector<FkCheck> checks;
  for (const ForeignKey& fk : sharded_->foreign_keys()) {
    if (!result.HasRelation(fk.child_relation) ||
        !result.HasRelation(fk.parent_relation)) {
      continue;
    }
    auto child = result.GetRelation(fk.child_relation);
    auto parent = result.GetRelation(fk.parent_relation);
    if (!(*child)->schema().HasAttribute(fk.child_attribute) ||
        !(*parent)->schema().HasAttribute(fk.parent_attribute)) {
      continue;
    }
    checks.push_back(FkCheck{&fk});
  }
  for (FkCheck& check : checks) {  // `checks` is fully built: stable refs
    FkCheck* slot = &check;
    const Database* res = &result;
    group.Run([res, slot] { slot->holds = ForeignKeyHolds(*res, *slot->fk); });
  }
  group.Wait();
  for (const FkCheck& check : checks) {
    if (check.holds) {
      PRECIS_RETURN_NOT_OK(result.AddForeignKey(*check.fk));
    } else {
      last_report_.dropped_foreign_keys.push_back(check.fk->ToString());
    }
  }

  last_report_.total_tuples = result.TotalTuples();
  if (ctx != nullptr) last_report_.stop_reason = ctx->stop_reason();

  if (shard_stats != nullptr) {
    shard_stats->Resize(num_shards);
    shard_stats->merge_seconds = merge_seconds;
    shard_stats->merge_events = merge_events;
    if (fault_plan != nullptr) {
      shard_stats->shards_skipped = fault_plan->skipped;
      shard_stats->shard_probe_retries = fault_plan->probe_retries;
      shard_stats->breaker_rejects = fault_plan->breaker_rejects;
    }
    shard_stats->hedged_subqueries = hedged_total;
    shard_stats->hedge_wins = hedge_wins_total;
    shard_stats->budget_total = budget;
    shard_stats->budget_slice = num_shards > 0 ? budget / num_shards : 0;
    shard_stats->rebalanced_charges = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      shard_stats->subqueries[s] =
          shard_subqueries[s] +
          shard_chunk_cells[s].load(std::memory_order_relaxed);
      shard_stats->charges[s] =
          shard_lookups[s] +
          shard_fetch_cells[s].load(std::memory_order_relaxed);
      shard_stats->scratch_bytes[s] = shard_scratch_peak[s];
      if (budget > 0 && shard_stats->charges[s] > shard_stats->budget_slice) {
        shard_stats->rebalanced_charges +=
            shard_stats->charges[s] - shard_stats->budget_slice;
      }
    }
  }
  return result;
}

}  // namespace precis
