// The query layer: the selection shapes the précis generators submit.
//
// The paper's Result Database Generator never executes joins inside the
// database; it issues only two kinds of selection queries (§5.2):
//
//   (1)  sigma_{tid in Tids}(R) [pi(R)]      -- seed tuples by rowid
//   (2)  sigma_{A in Ids}(R)    [pi(R)]      -- parameterized IN-list on a
//                                               join attribute, via index
//
// plus, for the RoundRobin strategy, one open scan per probe value from
// which tuples are pulled one at a time. This module implements exactly
// those shapes over the storage engine, instrumented for the cost model,
// and able to render the equivalent SQL text for debugging.

#ifndef PRECIS_SQL_SELECT_H_
#define PRECIS_SQL_SELECT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/relation.h"

namespace precis {

/// \brief One fetched row: its rowid plus the (projected) values.
struct Row {
  Tid tid;
  Tuple values;
};

/// \brief Applies a positional projection to a tuple.
Tuple ProjectTuple(const Tuple& tuple, const std::vector<size_t>& projection);

/// \brief True if `projection` selects all `num_attributes` attributes in
/// schema order — i.e. projecting is the identity. The fetch paths detect
/// this once per statement and copy whole tuples (one vector copy) instead
/// of rebuilding them value by value per row.
inline bool IsIdentityProjection(const std::vector<size_t>& projection,
                                 size_t num_attributes) {
  if (projection.size() != num_attributes) return false;
  for (size_t i = 0; i < projection.size(); ++i) {
    if (projection[i] != i) return false;
  }
  return true;
}

/// \brief Resolves attribute names to positional indices against a schema.
Result<std::vector<size_t>> ResolveProjection(
    const RelationSchema& schema, const std::vector<std::string>& attributes);

/// \brief Query shape (1): fetch tuples of `relation` whose tid is in `tids`,
/// projected on `projection` (attribute indices), keeping at most `limit`
/// rows if given.
///
/// Mirrors Oracle's "WHERE rowid IN (...) AND RowNum <= k" that the paper's
/// NaiveQ uses for seed tuples: the subset kept under a limit is an
/// arbitrary prefix, not a semantic top-k.
///
/// When `ctx` is given, accesses are attributed to it and the fetch stops
/// early (returning the rows collected so far) once the context reports
/// ShouldStop() — deadline passed, budget exhausted, or cancelled.
Result<std::vector<Row>> FetchByTids(const Relation& relation,
                                     const std::vector<Tid>& tids,
                                     const std::vector<size_t>& projection,
                                     std::optional<size_t> limit,
                                     ExecutionContext* ctx = nullptr);

/// \brief Query shape (2): fetch tuples of `relation` whose `attribute`
/// value appears in `keys` (an IN-list of join values), projected, limited.
///
/// Costs one index probe per key plus one tuple fetch per returned row —
/// exactly the terms of the paper's cost model (Formula 1). Honors `ctx`
/// like FetchByTids: partial rows on early stop.
Result<std::vector<Row>> FetchByJoinValues(
    const Relation& relation, const std::string& attribute,
    const std::vector<Value>& keys, const std::vector<size_t>& projection,
    std::optional<size_t> limit, ExecutionContext* ctx = nullptr);

/// \brief RoundRobin support: one open scan of joining tuples per probe
/// value (paper §5.2).
///
/// For each value v in `keys`, a scan over the tuples of `relation` whose
/// `attribute` equals v is opened. Tuples are then pulled one at a time per
/// scan; a drained scan reports closed. The précis generator cycles over the
/// scans to distribute the cardinality budget uniformly across the source
/// tuples.
class PerValueScanSet {
 public:
  /// Opens one scan per key (one index probe each). When `ctx` is given the
  /// probes are attributed to it; once the context reports ShouldStop() the
  /// remaining scans open empty (drained), so a budget/deadline hit during
  /// Open degrades to a partial scan set instead of failing. The context is
  /// retained for Next()'s fetch accounting and must outlive the set.
  static Result<PerValueScanSet> Open(const Relation& relation,
                                      const std::string& attribute,
                                      std::vector<Value> keys,
                                      std::vector<size_t> projection,
                                      ExecutionContext* ctx = nullptr);

  size_t num_scans() const { return scans_.size(); }

  /// True if scan `i` still has tuples.
  bool IsOpen(size_t i) const { return positions_[i] < scans_[i].size(); }

  /// True if every scan is drained.
  bool AllClosed() const;

  /// Pulls the next row from scan `i`, or nullopt if the scan is drained.
  /// Counts one tuple fetch when a row is produced.
  std::optional<Row> Next(size_t i);

  /// The probe value that scan `i` was opened for.
  const Value& key(size_t i) const { return keys_[i]; }

  // --- Degradation counters (DESIGN.md §12) -------------------------------
  // Under fault injection, Open and Next retry transient errors with the
  // context's RetryPolicy; exhausted retries degrade (drained scan /
  // dropped tuple) instead of failing. The generator folds these counters
  // into the per-relation DegradationReport.

  /// Keys whose scan failed to open after retries (drained scan instead).
  uint64_t failed_opens() const { return failed_opens_; }
  /// Tuples dropped because Get kept failing after retries.
  uint64_t dropped_fetches() const { return dropped_fetches_; }
  /// Retries performed across Open and Next.
  uint64_t retries() const { return retries_; }

  /// SQL-equivalent text of the scans, for logging.
  std::string ToSql(const Relation& relation) const;

 private:
  PerValueScanSet() = default;

  const Relation* relation_ = nullptr;
  ExecutionContext* ctx_ = nullptr;
  std::vector<Value> keys_;
  std::vector<size_t> projection_;
  std::vector<std::vector<Tid>> scans_;  // matching tids per key
  std::vector<size_t> positions_;        // next offset per scan
  std::string attribute_;
  uint64_t failed_opens_ = 0;
  uint64_t dropped_fetches_ = 0;
  uint64_t retries_ = 0;
};

/// \brief Renders query shape (2) as SQL text, e.g.
/// "SELECT title, year FROM MOVIE WHERE did IN (3, 17)".
std::string RenderInListSql(const RelationSchema& schema,
                            const std::string& attribute,
                            const std::vector<Value>& keys,
                            const std::vector<size_t>& projection,
                            std::optional<size_t> limit);

}  // namespace precis

#endif  // PRECIS_SQL_SELECT_H_
