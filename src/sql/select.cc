#include "sql/select.h"

#include <sstream>

#include "common/retry.h"

namespace precis {
namespace {

// True when fault checks can actually fire for this query — the retry
// wrappers below are skipped entirely otherwise, so the fault-free hot path
// stays a direct call (the < 5% zero-fault-overhead gate, DESIGN.md §12).
bool FaultsArmed(const ExecutionContext* ctx) {
  return ctx != nullptr && ctx->fault_injector() != nullptr &&
         ctx->fault_injector()->armed();
}

}  // namespace

Tuple ProjectTuple(const Tuple& tuple, const std::vector<size_t>& projection) {
  Tuple out;
  out.reserve(projection.size());
  for (size_t idx : projection) out.push_back(tuple[idx]);
  return out;
}

Result<std::vector<size_t>> ResolveProjection(
    const RelationSchema& schema, const std::vector<std::string>& attributes) {
  std::vector<size_t> out;
  out.reserve(attributes.size());
  for (const std::string& name : attributes) {
    auto idx = schema.AttributeIndex(name);
    if (!idx.ok()) return idx.status();
    out.push_back(*idx);
  }
  return out;
}

Result<std::vector<Row>> FetchByTids(const Relation& relation,
                                     const std::vector<Tid>& tids,
                                     const std::vector<size_t>& projection,
                                     std::optional<size_t> limit,
                                     ExecutionContext* ctx) {
  relation.CountStatement(ctx);
  std::vector<Row> rows;
  size_t max_rows = limit.value_or(tids.size());
  rows.reserve(std::min(max_rows, tids.size()));
  // Identity projections (every attribute, schema order) copy the whole
  // tuple in one go instead of rebuilding it value by value.
  const bool identity =
      IsIdentityProjection(projection, relation.schema().num_attributes());
  const bool faults = FaultsArmed(ctx);
  for (Tid tid : tids) {
    if (rows.size() >= max_rows) break;
    if (ctx != nullptr && ctx->ShouldStop()) break;
    auto tuple = faults ? RetryWithBackoff(ctx->retry_policy(), ctx,
                                           FaultSite::kTupleFetch,
                                           [&] { return relation.Get(tid, ctx); })
                        : relation.Get(tid, ctx);
    if (!tuple.ok()) return tuple.status();
    rows.push_back(
        Row{tid, identity ? **tuple : ProjectTuple(**tuple, projection)});
  }
  return rows;
}

Result<std::vector<Row>> FetchByJoinValues(
    const Relation& relation, const std::string& attribute,
    const std::vector<Value>& keys, const std::vector<size_t>& projection,
    std::optional<size_t> limit, ExecutionContext* ctx) {
  relation.CountStatement(ctx);
  std::vector<Row> rows;
  size_t max_rows = limit.value_or(SIZE_MAX);
  // Lower-bound guess: at least one row per probed key (the common 1:N
  // join yields more; growth then doubles from a sensible start instead of
  // reallocating through the small sizes).
  rows.reserve(std::min(max_rows, keys.size()));
  const bool identity =
      IsIdentityProjection(projection, relation.schema().num_attributes());
  const bool faults = FaultsArmed(ctx);
  for (size_t k = 0; k < keys.size(); ++k) {
    const Value& key = keys[k];
    if (rows.size() >= max_rows) break;
    if (ctx != nullptr && ctx->ShouldStop()) break;
    // Rolling software prefetch of the index slot a few probes ahead — a
    // pure cache hint, so truncation points and access charges are
    // untouched (byte-identity stays intact).
    if (k + 4 < keys.size()) relation.PrefetchEquals(attribute, keys[k + 4]);
    // The per-key lookup is one retriable unit: the join-value fault gate
    // plus the probe/scan behind it, so a transient fault on either retries
    // the whole key instead of leaving a half-consumed check sequence.
    auto tids = faults
                    ? RetryWithBackoff(
                          ctx->retry_policy(), ctx, FaultSite::kJoinValueLookup,
                          [&]() -> Result<std::vector<Tid>> {
                            PRECIS_RETURN_NOT_OK(
                                ctx->CheckFault(FaultSite::kJoinValueLookup));
                            return relation.LookupEquals(attribute, key, ctx);
                          })
                    : relation.LookupEquals(attribute, key, ctx);
    if (!tids.ok()) return tids.status();
    for (Tid tid : *tids) {
      if (rows.size() >= max_rows) break;
      if (ctx != nullptr && ctx->ShouldStop()) break;
      auto tuple =
          faults ? RetryWithBackoff(ctx->retry_policy(), ctx,
                                    FaultSite::kTupleFetch,
                                    [&] { return relation.Get(tid, ctx); })
                 : relation.Get(tid, ctx);
      if (!tuple.ok()) return tuple.status();
      rows.push_back(
          Row{tid, identity ? **tuple : ProjectTuple(**tuple, projection)});
    }
  }
  return rows;
}

Result<PerValueScanSet> PerValueScanSet::Open(const Relation& relation,
                                              const std::string& attribute,
                                              std::vector<Value> keys,
                                              std::vector<size_t> projection,
                                              ExecutionContext* ctx) {
  PerValueScanSet set;
  set.relation_ = &relation;
  set.ctx_ = ctx;
  set.attribute_ = attribute;
  set.keys_ = std::move(keys);
  set.projection_ = std::move(projection);
  set.scans_.reserve(set.keys_.size());
  const bool faults = FaultsArmed(ctx);
  for (size_t k = 0; k < set.keys_.size(); ++k) {
    const Value& key = set.keys_[k];
    // Charge-free slot prefetch a few probes ahead (see FetchByJoinValues).
    if (k + 4 < set.keys_.size()) {
      relation.PrefetchEquals(attribute, set.keys_[k + 4]);
    }
    if (ctx != nullptr && ctx->ShouldStop()) {
      // Budget/deadline hit mid-open: the remaining scans open drained so
      // the set stays structurally complete (key(i) etc. remain valid).
      set.scans_.emplace_back();
      continue;
    }
    // Each per-value scan is its own parameterized statement (cursor).
    relation.CountStatement(ctx);
    auto tids =
        faults ? RetryWithBackoff(
                     ctx->retry_policy(), ctx, FaultSite::kJoinValueLookup,
                     [&]() -> Result<std::vector<Tid>> {
                       PRECIS_RETURN_NOT_OK(
                           ctx->CheckFault(FaultSite::kJoinValueLookup));
                       return relation.LookupEquals(attribute, key, ctx);
                     },
                     &set.retries_)
               : relation.LookupEquals(attribute, key, ctx);
    if (!tids.ok()) {
      if (!tids.status().IsUnavailable()) return tids.status();
      // Retries exhausted on an injected fault: this key's scan opens
      // drained and the degradation is reported, not fatal — the paper's
      // constraints already give partial answers well-defined semantics.
      ++set.failed_opens_;
      set.scans_.emplace_back();
      continue;
    }
    set.scans_.push_back(std::move(*tids));
  }
  set.positions_.assign(set.scans_.size(), 0);
  return set;
}

bool PerValueScanSet::AllClosed() const {
  for (size_t i = 0; i < scans_.size(); ++i) {
    if (IsOpen(i)) return false;
  }
  return true;
}

std::optional<Row> PerValueScanSet::Next(size_t i) {
  if (!IsOpen(i)) return std::nullopt;
  Tid tid = scans_[i][positions_[i]++];
  auto tuple = FaultsArmed(ctx_)
                   ? RetryWithBackoff(ctx_->retry_policy(), ctx_,
                                      FaultSite::kTupleFetch,
                                      [&] { return relation_->Get(tid, ctx_); },
                                      &retries_)
                   : relation_->Get(tid, ctx_);
  if (!tuple.ok()) {
    // An exhausted transient fault drops this one tuple (counted, surfaced
    // in the DegradationReport); the scan itself stays usable. Tids in
    // scans_ came from the relation's own index, so a non-fault failure
    // cannot happen for valid scans.
    if (tuple.status().IsUnavailable()) ++dropped_fetches_;
    return std::nullopt;
  }
  return Row{tid, ProjectTuple(**tuple, projection_)};
}

std::string PerValueScanSet::ToSql(const Relation& relation) const {
  std::ostringstream os;
  for (const Value& key : keys_) {
    os << RenderInListSql(relation.schema(), attribute_, {key}, projection_,
                          std::nullopt)
       << ";\n";
  }
  return os.str();
}

std::string RenderInListSql(const RelationSchema& schema,
                            const std::string& attribute,
                            const std::vector<Value>& keys,
                            const std::vector<size_t>& projection,
                            std::optional<size_t> limit) {
  std::ostringstream os;
  os << "SELECT ";
  for (size_t i = 0; i < projection.size(); ++i) {
    if (i > 0) os << ", ";
    os << schema.attribute(projection[i]).name;
  }
  if (projection.empty()) os << "*";
  os << " FROM " << schema.name() << " WHERE " << attribute << " IN (";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) os << ", ";
    if (keys[i].is_string()) {
      os << "'" << keys[i].ToString() << "'";
    } else {
      os << keys[i].ToString();
    }
  }
  os << ")";
  if (limit) os << " AND RowNum <= " << *limit;
  return os.str();
}

}  // namespace precis
