#include "graph/path.h"

#include <cassert>
#include <sstream>

namespace precis {

Path Path::Projection(RelationNodeId source, const ProjectionEdge* edge) {
  assert(edge != nullptr && edge->relation == source);
  Path p;
  p.source_ = source;
  p.projection_ = edge;
  p.weight_ = edge->weight;
  return p;
}

Path Path::Join(RelationNodeId source, const JoinEdge* edge) {
  assert(edge != nullptr && edge->from == source);
  Path p;
  p.source_ = source;
  p.joins_.push_back(edge);
  p.weight_ = edge->weight;
  return p;
}

Path Path::ExtendedByJoin(const JoinEdge* edge, double length_decay) const {
  assert(!is_projection_path());
  assert(edge->from == terminal_relation());
  assert(length_decay > 0.0 && length_decay <= 1.0);
  Path p = *this;
  p.joins_.push_back(edge);
  p.weight_ *= edge->weight * length_decay;
  return p;
}

Path Path::ExtendedByProjection(const ProjectionEdge* edge,
                                double length_decay) const {
  assert(!is_projection_path());
  assert(edge->relation == terminal_relation());
  assert(length_decay > 0.0 && length_decay <= 1.0);
  Path p = *this;
  p.projection_ = edge;
  p.weight_ *= edge->weight * length_decay;
  return p;
}

RelationNodeId Path::terminal_relation() const {
  if (projection_ != nullptr) return projection_->relation;
  if (!joins_.empty()) return joins_.back()->to;
  return source_;
}

bool Path::ContainsRelation(RelationNodeId relation) const {
  if (relation == source_) return true;
  for (const JoinEdge* e : joins_) {
    if (e->to == relation) return true;
  }
  return false;
}

std::string Path::ToString(const SchemaGraph& graph) const {
  std::ostringstream os;
  os << graph.relation_name(source_);
  for (const JoinEdge* e : joins_) {
    os << " -(" << e->from_attribute << ")-> " << graph.relation_name(e->to);
  }
  if (projection_ != nullptr) {
    os << " . "
       << graph.relation_schema(projection_->relation)
              .attribute(projection_->attribute)
              .name;
  }
  os << " [w=" << weight_ << "]";
  return os.str();
}

bool PathPrecedes(const Path& a, const Path& b) {
  if (a.weight() != b.weight()) return a.weight() > b.weight();
  return a.length() < b.length();
}

}  // namespace precis
