// Transitive join / projection paths and weight transfer (paper §3.2).
//
// "A directed path p between two relation nodes, comprising adjacent join
//  edges, represents the implicit join between these relations. A directed
//  path between a relation node and an attribute node ... represents the
//  implicit projection of the attribute on this relation."
//
// "The weight of a path is a function of the weight of constituent edges,
//  and should decrease as the length of the path increases [Collins &
//  Quillian]. In our implementation, we have chosen multiplication as this
//  function."
//
// This implementation generalizes the choice to  w(p) = (prod_i w_i) *
// lambda^(len-1)  with a configurable length-decay factor lambda in (0, 1]:
// lambda = 1 (the default everywhere) is exactly the paper's multiplication;
// smaller lambdas penalize transitivity itself, a knob the cited semantic-
// memory work motivates and bench/ablation_weight_transfer explores.

#ifndef PRECIS_GRAPH_PATH_H_
#define PRECIS_GRAPH_PATH_H_

#include <string>
#include <vector>

#include "graph/schema_graph.h"

namespace precis {

/// \brief A transitive path on the schema graph: a sequence of adjacent join
/// edges starting at `source`, optionally terminated by a projection edge.
///
/// With a terminating projection edge the path is a *transitive projection
/// path* (it projects one attribute onto `source`); without one it is a
/// *transitive join path*. Paths hold pointers into the SchemaGraph, which
/// must outlive them.
class Path {
 public:
  /// A path consisting of a single projection edge on `source` itself.
  static Path Projection(RelationNodeId source, const ProjectionEdge* edge);

  /// A path consisting of a single join edge out of `source`.
  static Path Join(RelationNodeId source, const JoinEdge* edge);

  /// This path extended by one more join edge (must depart from
  /// terminal_relation()). Only valid on join paths. `length_decay` is the
  /// extra per-hop attenuation lambda (1.0 = pure multiplication).
  Path ExtendedByJoin(const JoinEdge* edge, double length_decay = 1.0) const;

  /// This path terminated by a projection edge on terminal_relation().
  /// Only valid on join paths.
  Path ExtendedByProjection(const ProjectionEdge* edge,
                            double length_decay = 1.0) const;

  bool is_projection_path() const { return projection_ != nullptr; }

  RelationNodeId source() const { return source_; }

  /// The relation the path currently ends at (the projection edge's
  /// container relation for projection paths).
  RelationNodeId terminal_relation() const;

  /// Number of edges, counting the terminal projection edge if present.
  size_t length() const {
    return joins_.size() + (projection_ != nullptr ? 1 : 0);
  }

  /// Product of constituent edge weights.
  double weight() const { return weight_; }

  const std::vector<const JoinEdge*>& joins() const { return joins_; }
  const ProjectionEdge* projection() const { return projection_; }

  /// True if extending with a join edge to `relation` would revisit a
  /// relation already on the path (paths must stay acyclic).
  bool ContainsRelation(RelationNodeId relation) const;

  /// "DIRECTOR -(did)-> MOVIE . title [w=0.72]" rendering.
  std::string ToString(const SchemaGraph& graph) const;

 private:
  RelationNodeId source_ = 0;
  std::vector<const JoinEdge*> joins_;
  const ProjectionEdge* projection_ = nullptr;
  double weight_ = 1.0;
};

/// \brief Ordering used by the Result Schema Generator's queue: decreasing
/// weight; among equal weights, increasing length ("shorter paths are
/// favoured ... based on the intuition that these may connect more closely
/// related entities").
///
/// Returns true if `a` should be dequeued before `b`.
bool PathPrecedes(const Path& a, const Path& b);

}  // namespace precis

#endif  // PRECIS_GRAPH_PATH_H_
