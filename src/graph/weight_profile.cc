#include "graph/weight_profile.h"

#include <set>

namespace precis {

Result<SchemaGraph> DeriveGraphFromForeignKeys(
    const Database& db, const DeriveGraphOptions& options) {
  for (double w :
       {options.child_to_parent_weight, options.parent_to_child_weight,
        options.attribute_projection_weight,
        options.key_projection_weight}) {
    if (w < 0.0 || w > 1.0) {
      return Status::InvalidArgument("derive weights must lie in [0, 1]");
    }
  }
  auto graph = SchemaGraph::FromDatabase(db);
  if (!graph.ok()) return graph.status();

  // Key-like attributes: primary keys plus both end points of foreign keys.
  std::set<std::pair<std::string, std::string>> key_attrs;
  for (const std::string& name : db.RelationNames()) {
    auto rel = db.GetRelation(name);
    if (!rel.ok()) return rel.status();
    const RelationSchema& schema = (*rel)->schema();
    if (schema.primary_key()) {
      key_attrs.insert({name, schema.attribute(*schema.primary_key()).name});
    }
  }
  for (const ForeignKey& fk : db.foreign_keys()) {
    key_attrs.insert({fk.child_relation, fk.child_attribute});
    key_attrs.insert({fk.parent_relation, fk.parent_attribute});
  }

  for (const std::string& name : db.RelationNames()) {
    auto rel = db.GetRelation(name);
    const RelationSchema& schema = (*rel)->schema();
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      const std::string& attr = schema.attribute(i).name;
      double w = key_attrs.count({name, attr}) > 0
                     ? options.key_projection_weight
                     : options.attribute_projection_weight;
      PRECIS_RETURN_NOT_OK(graph->AddProjectionEdge(name, attr, w));
    }
  }
  for (const ForeignKey& fk : db.foreign_keys()) {
    // Several FKs may connect the same relation pair (the bibliography's
    // CITES.citing / CITES.cited); the graph allows one edge per directed
    // pair, so keep the first and skip the rest.
    Status forward = graph->AddJoinEdge(
        fk.child_relation, fk.child_attribute, fk.parent_relation,
        fk.parent_attribute, options.child_to_parent_weight);
    if (!forward.ok() && !forward.IsAlreadyExists()) return forward;
    Status backward = graph->AddJoinEdge(
        fk.parent_relation, fk.parent_attribute, fk.child_relation,
        fk.child_attribute, options.parent_to_child_weight);
    if (!backward.ok() && !backward.IsAlreadyExists()) return backward;
  }
  PRECIS_RETURN_NOT_OK(graph->Validate());
  return graph;
}

WeightProfile& WeightProfile::SetProjection(const std::string& relation,
                                            const std::string& attribute,
                                            double weight) {
  projection_weights_[{relation, attribute}] = weight;
  return *this;
}

WeightProfile& WeightProfile::SetJoin(const std::string& from,
                                      const std::string& to, double weight) {
  join_weights_[{from, to}] = weight;
  return *this;
}

Status WeightProfile::ApplyTo(SchemaGraph* graph) const {
  for (const auto& [key, weight] : projection_weights_) {
    PRECIS_RETURN_NOT_OK(
        graph->SetProjectionWeight(key.first, key.second, weight));
  }
  for (const auto& [key, weight] : join_weights_) {
    PRECIS_RETURN_NOT_OK(graph->SetJoinWeight(key.first, key.second, weight));
  }
  return Status::OK();
}

Status ProfileRegistry::Register(WeightProfile profile) {
  if (profile.name().empty()) {
    return Status::InvalidArgument("profile must have a non-empty name");
  }
  const std::string name = profile.name();
  profiles_.insert_or_assign(name, std::move(profile));
  return Status::OK();
}

Result<const WeightProfile*> ProfileRegistry::Get(
    const std::string& name) const {
  auto it = profiles_.find(name);
  if (it == profiles_.end()) {
    return Status::NotFound("no weight profile named '" + name + "'");
  }
  return &it->second;
}

Status ProfileRegistry::Apply(const std::string& name,
                              SchemaGraph* graph) const {
  auto profile = Get(name);
  if (!profile.ok()) return profile.status();
  return (*profile)->ApplyTo(graph);
}

std::vector<std::string> ProfileRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& [name, profile] : profiles_) out.push_back(name);
  return out;
}

Status RandomizeWeights(SchemaGraph* graph, Rng* rng, double lo, double hi) {
  if (lo < 0.0 || hi > 1.0 || lo > hi) {
    return Status::InvalidArgument("random weight range must be within [0,1]");
  }
  for (const ProjectionEdge& e : graph->projection_edges()) {
    double w = lo + (hi - lo) * rng->NextDouble();
    PRECIS_RETURN_NOT_OK(graph->SetProjectionWeight(
        graph->relation_name(e.relation),
        graph->relation_schema(e.relation).attribute(e.attribute).name, w));
  }
  for (const JoinEdge& e : graph->join_edges()) {
    double w = lo + (hi - lo) * rng->NextDouble();
    PRECIS_RETURN_NOT_OK(graph->SetJoinWeight(graph->relation_name(e.from),
                                              graph->relation_name(e.to), w));
  }
  return Status::OK();
}

}  // namespace precis
