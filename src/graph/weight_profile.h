// Weight profiles: named sets of edge weights (paper §3.1).
//
// "Sets of weights may be created by a designer targeting different groups
//  of users ... multiple sets of weights corresponding to different user
//  profiles may be stored in the system. Using user-specific weights allows
//  generating personalized answers."

#ifndef PRECIS_GRAPH_WEIGHT_PROFILE_H_
#define PRECIS_GRAPH_WEIGHT_PROFILE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/schema_graph.h"

namespace precis {

/// \brief A reusable set of weight overrides to apply to a SchemaGraph.
///
/// A profile stores weights for projection edges (keyed by relation and
/// attribute name) and join edges (keyed by source and destination relation
/// name). Applying a profile overrides the weights of the edges it mentions
/// and leaves other edges untouched, so profiles can be sparse ("this user
/// cares about THEATRE.region, not THEATRE.phone").
class WeightProfile {
 public:
  WeightProfile() = default;
  explicit WeightProfile(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Sets the weight for projection edge `relation`.`attribute`.
  WeightProfile& SetProjection(const std::string& relation,
                               const std::string& attribute, double weight);

  /// Sets the weight for join edge `from` -> `to`.
  WeightProfile& SetJoin(const std::string& from, const std::string& to,
                         double weight);

  /// Overrides the weights of `graph` for every edge this profile mentions.
  /// Fails if the profile mentions an edge the graph does not have.
  Status ApplyTo(SchemaGraph* graph) const;

  size_t num_entries() const {
    return projection_weights_.size() + join_weights_.size();
  }

 private:
  std::string name_;
  std::map<std::pair<std::string, std::string>, double> projection_weights_;
  std::map<std::pair<std::string, std::string>, double> join_weights_;
};

/// \brief Options for DeriveGraphFromForeignKeys.
struct DeriveGraphOptions {
  /// Weight of child -> parent join edges (a tuple depends on what it
  /// references; the paper's GENRE -> MOVIE direction).
  double child_to_parent_weight = 1.0;
  /// Weight of parent -> child join edges.
  double parent_to_child_weight = 0.8;
  /// Projection weight of ordinary (non-key) attributes.
  double attribute_projection_weight = 0.8;
  /// Projection weight of primary-key and foreign-key attributes (id-like
  /// columns rarely belong in a précis).
  double key_projection_weight = 0.1;
};

/// \brief Bootstraps a schema graph from a database's declared constraints:
/// "These could be joins that arise naturally due to foreign key
/// constraints" (§3.1). One join-edge pair per foreign key, projection
/// edges on every attribute, weights per `options`. A domain expert (or a
/// WeightProfile) refines the result; it is a sensible default, not a
/// substitute for curation.
Result<SchemaGraph> DeriveGraphFromForeignKeys(
    const Database& db, const DeriveGraphOptions& options = {});

/// \brief Assigns independent uniform-random weights in [lo, hi] to *every*
/// edge of the graph — the methodology behind the paper's experiments, which
/// average over "20 randomly generated sets of weights for the edges of the
/// database schema graph".
Status RandomizeWeights(SchemaGraph* graph, Rng* rng, double lo = 0.0,
                        double hi = 1.0);

/// \brief Named storage of weight profiles — "multiple sets of weights
/// corresponding to different user profiles may be stored in the system"
/// (§3.1). A system keeps one registry and applies the requesting user's
/// profile to a fresh graph per session.
class ProfileRegistry {
 public:
  /// Registers (or replaces) a profile under its own name. Unnamed
  /// profiles are rejected.
  Status Register(WeightProfile profile);

  /// Looks a profile up by name.
  Result<const WeightProfile*> Get(const std::string& name) const;

  /// Applies the named profile to `graph`.
  Status Apply(const std::string& name, SchemaGraph* graph) const;

  /// Registered profile names, sorted.
  std::vector<std::string> Names() const;

  size_t size() const { return profiles_.size(); }

 private:
  std::map<std::string, WeightProfile> profiles_;
};

}  // namespace precis

#endif  // PRECIS_GRAPH_WEIGHT_PROFILE_H_
