#include "graph/schema_graph.h"

#include <sstream>

namespace precis {

Result<SchemaGraph> SchemaGraph::FromDatabase(const Database& db) {
  std::vector<RelationSchema> schemas;
  for (const std::string& name : db.RelationNames()) {
    auto rel = db.GetRelation(name);
    if (!rel.ok()) return rel.status();
    schemas.push_back((*rel)->schema());
  }
  return FromSchemas(std::move(schemas));
}

Result<SchemaGraph> SchemaGraph::FromSchemas(
    std::vector<RelationSchema> schemas) {
  SchemaGraph g;
  g.schemas_ = std::move(schemas);
  for (RelationNodeId id = 0; id < g.schemas_.size(); ++id) {
    const std::string& name = g.schemas_[id].name();
    if (!g.relation_ids_.emplace(name, id).second) {
      return Status::InvalidArgument("duplicate relation name '" + name +
                                     "' in schema graph");
    }
  }
  g.projections_by_relation_.resize(g.schemas_.size());
  g.joins_from_.resize(g.schemas_.size());
  g.joins_to_.resize(g.schemas_.size());
  return g;
}

Result<RelationNodeId> SchemaGraph::RelationId(const std::string& name) const {
  auto it = relation_ids_.find(name);
  if (it == relation_ids_.end()) {
    return Status::NotFound("relation '" + name + "' not in schema graph");
  }
  return it->second;
}

Status SchemaGraph::CheckWeight(double weight) const {
  if (weight < 0.0 || weight > 1.0) {
    return Status::InvalidArgument("edge weight " + std::to_string(weight) +
                                   " outside [0, 1]");
  }
  return Status::OK();
}

Status SchemaGraph::AddProjectionEdge(const std::string& relation,
                                      const std::string& attribute,
                                      double weight) {
  PRECIS_RETURN_NOT_OK(CheckWeight(weight));
  auto rel = RelationId(relation);
  if (!rel.ok()) return rel.status();
  auto attr = schemas_[*rel].AttributeIndex(attribute);
  if (!attr.ok()) return attr.status();
  for (const ProjectionEdge* e : projections_by_relation_[*rel]) {
    if (e->attribute == *attr) {
      return Status::AlreadyExists("projection edge " + relation + "." +
                                   attribute + " already exists");
    }
  }
  projection_edges_.push_back(ProjectionEdge{
      *rel, static_cast<uint32_t>(*attr), weight});
  projections_by_relation_[*rel].push_back(&projection_edges_.back());
  BumpWeightEpoch();
  return Status::OK();
}

Status SchemaGraph::AddAllProjectionEdges(const std::string& relation,
                                          double weight) {
  auto rel = RelationId(relation);
  if (!rel.ok()) return rel.status();
  for (const auto& attr : schemas_[*rel].attributes()) {
    PRECIS_RETURN_NOT_OK(AddProjectionEdge(relation, attr.name, weight));
  }
  return Status::OK();
}

Status SchemaGraph::AddJoinEdge(const std::string& from_relation,
                                const std::string& from_attribute,
                                const std::string& to_relation,
                                const std::string& to_attribute,
                                double weight) {
  PRECIS_RETURN_NOT_OK(CheckWeight(weight));
  auto from = RelationId(from_relation);
  if (!from.ok()) return from.status();
  auto to = RelationId(to_relation);
  if (!to.ok()) return to.status();
  auto from_attr = schemas_[*from].AttributeIndex(from_attribute);
  if (!from_attr.ok()) return from_attr.status();
  auto to_attr = schemas_[*to].AttributeIndex(to_attribute);
  if (!to_attr.ok()) return to_attr.status();
  if (schemas_[*from].attribute(*from_attr).type !=
      schemas_[*to].attribute(*to_attr).type) {
    return Status::InvalidArgument(
        "join attribute type mismatch: " + from_relation + "." +
        from_attribute + " vs " + to_relation + "." + to_attribute);
  }
  // Paper simplification: at most one directed edge per (from, to) pair.
  for (const JoinEdge* e : joins_from_[*from]) {
    if (e->to == *to) {
      return Status::AlreadyExists("join edge " + from_relation + " -> " +
                                   to_relation + " already exists");
    }
  }
  join_edges_.push_back(
      JoinEdge{*from, *to, from_attribute, to_attribute, weight});
  joins_from_[*from].push_back(&join_edges_.back());
  joins_to_[*to].push_back(&join_edges_.back());
  BumpWeightEpoch();
  return Status::OK();
}

Status SchemaGraph::AddJoinEdgePair(const std::string& relation_a,
                                    const std::string& relation_b,
                                    const std::string& attribute,
                                    double weight_ab, double weight_ba) {
  if (weight_ab >= 0.0) {
    PRECIS_RETURN_NOT_OK(
        AddJoinEdge(relation_a, attribute, relation_b, attribute, weight_ab));
  }
  if (weight_ba >= 0.0) {
    PRECIS_RETURN_NOT_OK(
        AddJoinEdge(relation_b, attribute, relation_a, attribute, weight_ba));
  }
  return Status::OK();
}

Status SchemaGraph::SetProjectionWeight(const std::string& relation,
                                        const std::string& attribute,
                                        double weight) {
  PRECIS_RETURN_NOT_OK(CheckWeight(weight));
  auto rel = RelationId(relation);
  if (!rel.ok()) return rel.status();
  auto attr = schemas_[*rel].AttributeIndex(attribute);
  if (!attr.ok()) return attr.status();
  for (ProjectionEdge& e : projection_edges_) {
    if (e.relation == *rel && e.attribute == *attr) {
      e.weight = weight;
      BumpWeightEpoch();
      return Status::OK();
    }
  }
  return Status::NotFound("no projection edge " + relation + "." + attribute);
}

Status SchemaGraph::SetJoinWeight(const std::string& from_relation,
                                  const std::string& to_relation,
                                  double weight) {
  PRECIS_RETURN_NOT_OK(CheckWeight(weight));
  auto from = RelationId(from_relation);
  if (!from.ok()) return from.status();
  auto to = RelationId(to_relation);
  if (!to.ok()) return to.status();
  for (JoinEdge& e : join_edges_) {
    if (e.from == *from && e.to == *to) {
      e.weight = weight;
      BumpWeightEpoch();
      return Status::OK();
    }
  }
  return Status::NotFound("no join edge " + from_relation + " -> " +
                          to_relation);
}

Result<double> SchemaGraph::ProjectionWeight(
    const std::string& relation, const std::string& attribute) const {
  auto rel = RelationId(relation);
  if (!rel.ok()) return rel.status();
  auto attr = schemas_[*rel].AttributeIndex(attribute);
  if (!attr.ok()) return attr.status();
  for (const ProjectionEdge* e : projections_by_relation_[*rel]) {
    if (e->attribute == *attr) return e->weight;
  }
  return Status::NotFound("no projection edge " + relation + "." + attribute);
}

Result<double> SchemaGraph::JoinWeight(const std::string& from_relation,
                                       const std::string& to_relation) const {
  auto from = RelationId(from_relation);
  if (!from.ok()) return from.status();
  auto to = RelationId(to_relation);
  if (!to.ok()) return to.status();
  for (const JoinEdge* e : joins_from_[*from]) {
    if (e->to == *to) return e->weight;
  }
  return Status::NotFound("no join edge " + from_relation + " -> " +
                          to_relation);
}

Status SchemaGraph::Validate() const {
  for (const ProjectionEdge& e : projection_edges_) {
    PRECIS_RETURN_NOT_OK(CheckWeight(e.weight));
  }
  for (const JoinEdge& e : join_edges_) {
    PRECIS_RETURN_NOT_OK(CheckWeight(e.weight));
    const RelationSchema& from_schema = schemas_[e.from];
    const RelationSchema& to_schema = schemas_[e.to];
    auto fa = from_schema.AttributeIndex(e.from_attribute);
    if (!fa.ok()) return fa.status();
    auto ta = to_schema.AttributeIndex(e.to_attribute);
    if (!ta.ok()) return ta.status();
    if (from_schema.attribute(*fa).type != to_schema.attribute(*ta).type) {
      return Status::InvalidArgument(
          "join attribute type mismatch on edge " + from_schema.name() +
          " -> " + to_schema.name());
    }
  }
  return Status::OK();
}

std::string SchemaGraph::ToString() const {
  std::ostringstream os;
  for (RelationNodeId id = 0; id < schemas_.size(); ++id) {
    os << schemas_[id].ToString() << "\n";
    for (const ProjectionEdge* e : projections_by_relation_[id]) {
      os << "  pi " << schemas_[id].attribute(e->attribute).name << "  w="
         << e->weight << "\n";
    }
    for (const JoinEdge* e : joins_from_[id]) {
      os << "  join -> " << schemas_[e->to].name() << " on ("
         << e->from_attribute << " = " << e->to_attribute
         << ")  w=" << e->weight << "\n";
    }
  }
  return os.str();
}

}  // namespace precis
