// The database schema graph G(V, E) of paper §3.1.
//
// V = relation nodes + attribute nodes.
// E = projection edges (relation -> attribute, "the possible projection of
//     the attribute in the system's answer") + directed join edges
//     (relation -> relation, tagged with the joining attributes).
//
// Every edge carries a weight in [0, 1] expressing the significance of the
// bond: 1 = "if one node appears in an answer the other should too",
// 0 = no implication. Two relations may be connected by two join edges in
// opposite directions carrying different weights (the paper's MOVIE/GENRE
// example), but at most one directed edge exists per (source, destination).

#ifndef PRECIS_GRAPH_SCHEMA_GRAPH_H_
#define PRECIS_GRAPH_SCHEMA_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/database.h"
#include "storage/schema.h"

namespace precis {

/// Relation node identifier within a SchemaGraph.
using RelationNodeId = uint32_t;

/// \brief Projection edge: connects an attribute node with its container
/// relation node.
struct ProjectionEdge {
  RelationNodeId relation;
  uint32_t attribute;  // attribute index within the relation schema
  double weight;
};

/// \brief Directed join edge between two relation nodes.
///
/// "A directed join edge expresses the dependence of the left part of the
/// join on the right part": `from` is the relation already considered for
/// the answer, `to` is the relation that may be included if the join is
/// taken into account.
struct JoinEdge {
  RelationNodeId from;
  RelationNodeId to;
  std::string from_attribute;
  std::string to_attribute;
  double weight;
};

/// \brief The database schema graph with weighted projection and join edges.
///
/// Edges are stored in std::deque so that pointers to them remain stable as
/// edges are added; Path objects hold such pointers and require the graph to
/// outlive them.
class SchemaGraph {
 public:
  // Movable but not copyable: the adjacency lists hold pointers into the
  // edge deques of this object; moving keeps deque element addresses stable,
  // copying would leave the copy pointing into the source.
  SchemaGraph(SchemaGraph&&) = default;
  SchemaGraph& operator=(SchemaGraph&&) = default;
  SchemaGraph(const SchemaGraph&) = delete;
  SchemaGraph& operator=(const SchemaGraph&) = delete;

  /// Builds a graph whose nodes mirror the schema of `db`; no edges yet.
  static Result<SchemaGraph> FromDatabase(const Database& db);

  /// Builds a graph from bare relation schemas (no data needed).
  static Result<SchemaGraph> FromSchemas(std::vector<RelationSchema> schemas);

  size_t num_relations() const { return schemas_.size(); }
  const RelationSchema& relation_schema(RelationNodeId id) const {
    return schemas_[id];
  }
  const std::string& relation_name(RelationNodeId id) const {
    return schemas_[id].name();
  }
  Result<RelationNodeId> RelationId(const std::string& name) const;

  /// Adds a projection edge with the given weight in [0, 1].
  Status AddProjectionEdge(const std::string& relation,
                           const std::string& attribute, double weight);

  /// Adds projection edges for every attribute of `relation` at `weight`
  /// (convenience used by the data generator and tests).
  Status AddAllProjectionEdges(const std::string& relation, double weight);

  /// Adds a directed join edge. The joining attributes must exist and have
  /// the same type. At most one edge may exist per (from, to) pair.
  Status AddJoinEdge(const std::string& from_relation,
                     const std::string& from_attribute,
                     const std::string& to_relation,
                     const std::string& to_attribute, double weight);

  /// Adds the common paper case: both directions over the same attribute
  /// name, with independent weights (pass a negative weight to skip that
  /// direction).
  Status AddJoinEdgePair(const std::string& relation_a,
                         const std::string& relation_b,
                         const std::string& attribute, double weight_ab,
                         double weight_ba);

  /// Projection edges of a relation, in insertion order.
  const std::vector<const ProjectionEdge*>& ProjectionsOf(
      RelationNodeId relation) const {
    return projections_by_relation_[relation];
  }

  /// Outgoing join edges of a relation, in insertion order.
  const std::vector<const JoinEdge*>& JoinsFrom(RelationNodeId relation) const {
    return joins_from_[relation];
  }

  /// Incoming join edges of a relation.
  const std::vector<const JoinEdge*>& JoinsTo(RelationNodeId relation) const {
    return joins_to_[relation];
  }

  /// All join edges, in insertion order.
  const std::deque<JoinEdge>& join_edges() const { return join_edges_; }
  /// All projection edges, in insertion order.
  const std::deque<ProjectionEdge>& projection_edges() const {
    return projection_edges_;
  }

  /// Re-weights an existing projection edge.
  Status SetProjectionWeight(const std::string& relation,
                             const std::string& attribute, double weight);
  /// Re-weights an existing join edge.
  Status SetJoinWeight(const std::string& from_relation,
                       const std::string& to_relation, double weight);

  /// Weight of the projection edge, if present.
  Result<double> ProjectionWeight(const std::string& relation,
                                  const std::string& attribute) const;
  /// Weight of the join edge, if present.
  Result<double> JoinWeight(const std::string& from_relation,
                            const std::string& to_relation) const;

  /// Weight epoch: bumped whenever an edge is added or re-weighted
  /// (AddProjectionEdge, AddJoinEdge, SetProjectionWeight, SetJoinWeight).
  /// Result schemas and answers cached against a graph carry the epoch in
  /// their cache key, so a weight change makes every previously cached
  /// entry unreachable instead of stale (DESIGN.md §10).
  uint64_t weight_epoch() const {
    return weight_epoch_->load(std::memory_order_relaxed);
  }

  /// Sanity checks: all weights in [0,1], join attribute types compatible.
  Status Validate() const;

  /// Human-readable edge lists.
  std::string ToString() const;

 private:
  SchemaGraph() = default;

  Status CheckWeight(double weight) const;

  void BumpWeightEpoch() {
    weight_epoch_->fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<RelationSchema> schemas_;
  std::map<std::string, RelationNodeId> relation_ids_;

  std::deque<ProjectionEdge> projection_edges_;
  std::deque<JoinEdge> join_edges_;

  // Adjacency: pointers into the deques above (stable).
  std::vector<std::vector<const ProjectionEdge*>> projections_by_relation_;
  std::vector<std::vector<const JoinEdge*>> joins_from_;
  std::vector<std::vector<const JoinEdge*>> joins_to_;

  // Behind a unique_ptr so the graph stays movable despite the atomic
  // (pointer identity also survives moves, matching the cached-key users).
  std::unique_ptr<std::atomic<uint64_t>> weight_epoch_ =
      std::make_unique<std::atomic<uint64_t>>(0);
};

}  // namespace precis

#endif  // PRECIS_GRAPH_SCHEMA_GRAPH_H_
