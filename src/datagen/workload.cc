#include "datagen/workload.h"

#include <algorithm>
#include <optional>
#include <set>

namespace precis {

Result<JoinChain> RandomJoinChain(const SchemaGraph& graph, Rng* rng,
                                  size_t num_relations) {
  if (num_relations == 0) {
    return Status::InvalidArgument("chain must have at least one relation");
  }
  if (num_relations > graph.num_relations()) {
    return Status::InvalidArgument(
        "chain of " + std::to_string(num_relations) +
        " relations exceeds graph size " +
        std::to_string(graph.num_relations()));
  }
  constexpr int kMaxAttempts = 1000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    JoinChain chain;
    chain.start = static_cast<RelationNodeId>(
        rng->Index(graph.num_relations()));
    std::set<RelationNodeId> visited = {chain.start};
    bool dead_end = false;
    while (chain.num_relations() < num_relations) {
      // Any outgoing edge from any visited relation to a fresh relation may
      // grow the set (a random spanning tree, not just a path).
      std::vector<const JoinEdge*> candidates;
      for (RelationNodeId rel : visited) {
        for (const JoinEdge* e : graph.JoinsFrom(rel)) {
          if (visited.count(e->to) == 0) candidates.push_back(e);
        }
      }
      if (candidates.empty()) {
        dead_end = true;
        break;
      }
      const JoinEdge* pick = candidates[rng->Index(candidates.size())];
      chain.edges.push_back(pick);
      visited.insert(pick->to);
    }
    if (!dead_end) return chain;
  }
  return Status::NotFound("no connected relation set of " +
                          std::to_string(num_relations) +
                          " relations found in the schema graph");
}

Result<ResultSchema> SchemaForChain(const SchemaGraph& graph,
                                    const JoinChain& chain) {
  ResultSchema schema(&graph);
  schema.AddTokenRelation(chain.start);

  // Projection paths on the start relation itself.
  for (const ProjectionEdge* e : graph.ProjectionsOf(chain.start)) {
    schema.AcceptProjectionPath(Path::Projection(chain.start, e));
  }
  // Transitive projection paths along every prefix of the chain. If a hop
  // relation has no projection edges it still enters G' through the join
  // edges of longer prefixes' paths — unless it is the chain's tail; to keep
  // each chain relation present we require (and the movies graph provides)
  // at least one projection edge per relation.
  // The chain's edges form a tree rooted at `start`: the join path to a
  // relation extends the join path of the edge's source relation.
  std::map<RelationNodeId, Path> path_to;
  for (const JoinEdge* e : chain.edges) {
    std::optional<Path> p;
    if (e->from == chain.start) {
      p = Path::Join(chain.start, e);
    } else {
      auto it = path_to.find(e->from);
      if (it == path_to.end()) {
        return Status::InvalidArgument(
            "chain edge departs from a relation not yet in the set");
      }
      p = it->second.ExtendedByJoin(e);
    }
    for (const ProjectionEdge* proj : graph.ProjectionsOf(e->to)) {
      schema.AcceptProjectionPath(p->ExtendedByProjection(proj));
    }
    path_to.emplace(e->to, std::move(*p));
  }
  return schema;
}

Result<std::vector<Tid>> RandomSeedTids(const Database& db,
                                        const std::string& relation, Rng* rng,
                                        size_t k) {
  auto rel = db.GetRelation(relation);
  if (!rel.ok()) return rel.status();
  size_t n = (*rel)->num_tuples();
  if (n == 0) return std::vector<Tid>{};
  size_t take = std::min(k, n);
  std::vector<size_t> picks = rng->SampleWithoutReplacement(n, take);
  std::vector<Tid> out(picks.begin(), picks.end());
  return out;
}

Result<std::string> RandomToken(const Database& db,
                                const std::string& relation,
                                const std::string& attribute, Rng* rng) {
  auto rel = db.GetRelation(relation);
  if (!rel.ok()) return rel.status();
  auto idx = (*rel)->schema().AttributeIndex(attribute);
  if (!idx.ok()) return idx.status();
  size_t n = (*rel)->num_tuples();
  if (n == 0) return Status::NotFound("relation '" + relation + "' is empty");
  const Value& v = (*rel)->tuple(rng->Index(n))[*idx];
  return v.ToString();
}

}  // namespace precis
