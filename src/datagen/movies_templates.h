// The designer annotations for the movies schema (paper §5.3): heading
// attributes, projection/join templates, and the MOVIE_LIST macro — exactly
// the running example's vocabulary, so that the précis of {"Woody Allen"}
// renders as the paragraph printed in the paper.

#ifndef PRECIS_DATAGEN_MOVIES_TEMPLATES_H_
#define PRECIS_DATAGEN_MOVIES_TEMPLATES_H_

#include "common/result.h"
#include "translator/catalog.h"

namespace precis {

/// \brief Builds the template catalog for the movies schema.
Result<TemplateCatalog> BuildMoviesTemplateCatalog();

}  // namespace precis

#endif  // PRECIS_DATAGEN_MOVIES_TEMPLATES_H_
