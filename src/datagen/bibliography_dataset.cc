#include "datagen/bibliography_dataset.h"

#include <array>
#include <string>
#include <vector>

#include "common/random.h"

namespace precis {

namespace {

constexpr std::array<const char*, 20> kSurnames = {
    "Codd",    "Gray",     "Stonebraker", "Ullman",  "Widom",
    "Abiteboul", "Bernstein", "DeWitt",   "Hellerstein", "Selinger",
    "Chamberlin", "Bayer",  "Mohan",      "Kitsuregawa", "Valduriez",
    "Ceri",    "Navathe",  "Ioannidis",   "Faloutsos",  "Agrawal"};

constexpr std::array<const char*, 14> kGivenNames = {
    "Ada",  "Boris", "Carla", "Deniz", "Erik",  "Fatma", "Goran",
    "Hana", "Ivan",  "Julia", "Kenji", "Leila", "Marco", "Nadia"};

constexpr std::array<const char*, 12> kTopics = {
    "Transactions",  "Query Optimization", "Indexing",  "Replication",
    "Data Streams",  "Schema Evolution",   "Views",     "Concurrency",
    "Data Cleaning", "Keyword Search",     "Histograms", "Caching"};

constexpr std::array<const char*, 10> kTopicAdjectives = {
    "Adaptive",  "Scalable",   "Incremental", "Distributed", "Robust",
    "Efficient", "Principled", "Self-Tuning", "Approximate", "Unified"};

constexpr std::array<const char*, 8> kVenueNames = {
    "SIGMOD", "VLDB", "ICDE", "EDBT", "CIDR", "PODS", "TODS", "DASFAA"};

constexpr std::array<const char*, 8> kCountries = {
    "USA",    "Germany", "Greece", "Japan",
    "Canada", "France",  "Italy",  "Brazil"};

constexpr std::array<const char*, 10> kAffiliations = {
    "MIT",          "Stanford",  "Berkeley",   "ETH Zurich", "U Athens",
    "U Wisconsin",  "CMU",       "TU Munich",  "U Tokyo",    "EPFL"};

constexpr std::array<const char*, 14> kKeywords = {
    "btree",      "two-phase-commit", "cost-model", "sampling",
    "materialized", "parallelism",    "recovery",   "locking",
    "sketching",  "provenance",       "compression", "partitioning",
    "benchmark",  "selectivity"};

Status CreateSchema(Database* db) {
  auto make = [&](const std::string& name,
                  std::vector<AttributeSchema> attrs,
                  const std::string& pk) -> Status {
    RelationSchema schema(name, std::move(attrs));
    PRECIS_RETURN_NOT_OK(schema.SetPrimaryKey(pk));
    return db->CreateRelation(std::move(schema));
  };
  PRECIS_RETURN_NOT_OK(make("AUTHOR",
                            {{"auid", DataType::kInt64},
                             {"name", DataType::kString},
                             {"affiliation", DataType::kString}},
                            "auid"));
  PRECIS_RETURN_NOT_OK(make("PAPER",
                            {{"pid", DataType::kInt64},
                             {"title", DataType::kString},
                             {"pyear", DataType::kInt64},
                             {"vid", DataType::kInt64}},
                            "pid"));
  PRECIS_RETURN_NOT_OK(make("WRITES",
                            {{"wid", DataType::kInt64},
                             {"auid", DataType::kInt64},
                             {"pid", DataType::kInt64}},
                            "wid"));
  PRECIS_RETURN_NOT_OK(make("VENUE",
                            {{"vid", DataType::kInt64},
                             {"vname", DataType::kString},
                             {"vtype", DataType::kString},
                             {"country", DataType::kString}},
                            "vid"));
  PRECIS_RETURN_NOT_OK(make("CITES",
                            {{"ctid", DataType::kInt64},
                             {"citing", DataType::kInt64},
                             {"cited", DataType::kInt64}},
                            "ctid"));
  PRECIS_RETURN_NOT_OK(make("KEYWORD",
                            {{"kid", DataType::kInt64},
                             {"pid", DataType::kInt64},
                             {"kw", DataType::kString}},
                            "kid"));

  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"WRITES", "auid", "AUTHOR", "auid"}));
  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"WRITES", "pid", "PAPER", "pid"}));
  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"PAPER", "vid", "VENUE", "vid"}));
  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"CITES", "citing", "PAPER", "pid"}));
  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"CITES", "cited", "PAPER", "pid"}));
  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"KEYWORD", "pid", "PAPER", "pid"}));
  return Status::OK();
}

Status AddGraphEdges(SchemaGraph* g) {
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("AUTHOR", "name", 1.0));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("AUTHOR", "affiliation", 0.8));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("AUTHOR", "auid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("PAPER", "title", 1.0));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("PAPER", "pyear", 0.9));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("PAPER", "pid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("PAPER", "vid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("WRITES", "wid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("WRITES", "auid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("WRITES", "pid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("VENUE", "vname", 1.0));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("VENUE", "vtype", 0.5));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("VENUE", "country", 0.6));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("VENUE", "vid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("CITES", "ctid", 0.1));
  // The citation references are themselves the information a citation row
  // carries; they must be projectable for PAPER -> CITES paths to survive
  // moderate thresholds.
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("CITES", "citing", 0.6));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("CITES", "cited", 0.6));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("KEYWORD", "kw", 1.0));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("KEYWORD", "kid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("KEYWORD", "pid", 0.1));

  // Same-name joins.
  PRECIS_RETURN_NOT_OK(
      g->AddJoinEdgePair("AUTHOR", "WRITES", "auid", 1.0, 0.8));
  PRECIS_RETURN_NOT_OK(g->AddJoinEdgePair("WRITES", "PAPER", "pid", 1.0, 0.7));
  PRECIS_RETURN_NOT_OK(g->AddJoinEdgePair("PAPER", "VENUE", "vid", 0.9, 0.8));
  PRECIS_RETURN_NOT_OK(
      g->AddJoinEdgePair("KEYWORD", "PAPER", "pid", 1.0, 0.6));
  // Citation joins: end-point attributes differ (PAPER.pid vs CITES.citing
  // / CITES.cited).
  PRECIS_RETURN_NOT_OK(g->AddJoinEdge("PAPER", "pid", "CITES", "citing", 0.85));
  PRECIS_RETURN_NOT_OK(g->AddJoinEdge("CITES", "cited", "PAPER", "pid", 0.95));
  return Status::OK();
}

Status Populate(Database* db, const BibliographyConfig& config) {
  Rng rng(config.seed);
  const size_t num_papers = config.num_papers;
  const size_t num_authors = std::max<size_t>(5, num_papers / 2);
  const size_t num_venues =
      std::min<size_t>(kVenueNames.size(), std::max<size_t>(3, num_papers / 50));
  ZipfSampler author_pick(num_authors, 0.8);

  auto insert = [&](const std::string& rel, Tuple t) -> Status {
    auto r = db->GetRelation(rel);
    if (!r.ok()) return r.status();
    auto tid = (*r)->Insert(std::move(t));
    if (!tid.ok()) return tid.status();
    return Status::OK();
  };

  for (size_t i = 0; i < num_authors; ++i) {
    std::string name = std::string(kGivenNames[i % kGivenNames.size()]) +
                       " " + kSurnames[(i / kGivenNames.size()) %
                                       kSurnames.size()];
    size_t round = i / (kGivenNames.size() * kSurnames.size());
    if (round > 0) name += " " + std::to_string(round + 1);
    PRECIS_RETURN_NOT_OK(insert(
        "AUTHOR",
        {static_cast<int64_t>(i + 1), name,
         std::string(kAffiliations[rng.Index(kAffiliations.size())])}));
  }
  for (size_t i = 0; i < num_venues; ++i) {
    PRECIS_RETURN_NOT_OK(insert(
        "VENUE", {static_cast<int64_t>(i + 1), std::string(kVenueNames[i]),
                  i % 3 == 0 ? "journal" : "conference",
                  std::string(kCountries[rng.Index(kCountries.size())])}));
  }

  int64_t wid = 1;
  int64_t ctid = 1;
  int64_t kid = 1;
  for (size_t i = 0; i < num_papers; ++i) {
    int64_t pid = static_cast<int64_t>(i + 1);
    std::string title =
        std::string(kTopicAdjectives[i % kTopicAdjectives.size()]) + " " +
        kTopics[(i / kTopicAdjectives.size()) % kTopics.size()];
    size_t round = i / (kTopicAdjectives.size() * kTopics.size());
    if (round > 0) title += " " + std::to_string(round + 1);
    int64_t vid = static_cast<int64_t>(rng.Index(num_venues)) + 1;
    PRECIS_RETURN_NOT_OK(
        insert("PAPER", {pid, title, rng.Uniform(1975, 2026), vid}));

    // 1-3 authors, distinct.
    size_t n_auth = static_cast<size_t>(rng.Uniform(1, 3));
    std::vector<int64_t> chosen;
    for (size_t a = 0; a < n_auth; ++a) {
      int64_t auid = static_cast<int64_t>(author_pick.Sample(&rng)) + 1;
      bool dup = false;
      for (int64_t c : chosen) {
        if (c == auid) dup = true;
      }
      if (dup) continue;
      chosen.push_back(auid);
      PRECIS_RETURN_NOT_OK(insert("WRITES", {wid++, auid, pid}));
    }

    // Citations: up to 3, strictly to older papers (a DAG, like real
    // bibliographies).
    if (i > 0) {
      size_t n_cites = static_cast<size_t>(rng.Uniform(0, 3));
      for (size_t c = 0; c < n_cites; ++c) {
        int64_t cited = static_cast<int64_t>(rng.Index(i)) + 1;
        PRECIS_RETURN_NOT_OK(insert("CITES", {ctid++, pid, cited}));
      }
    }

    // 1-3 keywords, distinct.
    size_t n_kw = static_cast<size_t>(rng.Uniform(1, 3));
    std::vector<size_t> kw_pick =
        rng.SampleWithoutReplacement(kKeywords.size(), n_kw);
    for (size_t k : kw_pick) {
      PRECIS_RETURN_NOT_OK(
          insert("KEYWORD", {kid++, pid, std::string(kKeywords[k])}));
    }
  }
  return Status::OK();
}

Status CreateJoinIndexes(Database* db) {
  auto index = [&](const std::string& rel, const std::string& attr) -> Status {
    auto r = db->GetRelation(rel);
    if (!r.ok()) return r.status();
    return (*r)->CreateIndex(attr);
  };
  PRECIS_RETURN_NOT_OK(index("AUTHOR", "auid"));
  PRECIS_RETURN_NOT_OK(index("WRITES", "auid"));
  PRECIS_RETURN_NOT_OK(index("WRITES", "pid"));
  PRECIS_RETURN_NOT_OK(index("PAPER", "pid"));
  PRECIS_RETURN_NOT_OK(index("PAPER", "vid"));
  PRECIS_RETURN_NOT_OK(index("VENUE", "vid"));
  PRECIS_RETURN_NOT_OK(index("CITES", "citing"));
  PRECIS_RETURN_NOT_OK(index("CITES", "cited"));
  PRECIS_RETURN_NOT_OK(index("KEYWORD", "pid"));
  return Status::OK();
}

}  // namespace

Result<SchemaGraph> BuildBibliographyGraph() {
  Database schema_only("bibliography_schema");
  PRECIS_RETURN_NOT_OK(CreateSchema(&schema_only));
  auto graph = SchemaGraph::FromDatabase(schema_only);
  if (!graph.ok()) return graph.status();
  PRECIS_RETURN_NOT_OK(AddGraphEdges(&*graph));
  PRECIS_RETURN_NOT_OK(graph->Validate());
  return graph;
}

Result<TemplateCatalog> BuildBibliographyTemplateCatalog() {
  TemplateCatalog catalog;
  catalog.SetHeadingAttribute("AUTHOR", "name");
  catalog.SetHeadingAttribute("PAPER", "title");
  catalog.SetHeadingAttribute("VENUE", "vname");
  catalog.SetHeadingAttribute("KEYWORD", "kw");

  PRECIS_RETURN_NOT_OK(catalog.DefineMacro(
      "PAPER_LIST",
      "[i<arityof(@TITLE)]{@TITLE[$i$] (@PYEAR[$i$]), }"
      "[i=arityof(@TITLE)]{@TITLE[$i$] (@PYEAR[$i$]).}"));

  PRECIS_RETURN_NOT_OK(catalog.SetProjectionTemplate(
      "AUTHOR", "@NAME is affiliated with @AFFILIATION."));
  PRECIS_RETURN_NOT_OK(catalog.SetProjectionTemplate(
      "PAPER", "@TITLE (@PYEAR)."));
  PRECIS_RETURN_NOT_OK(catalog.SetProjectionTemplate(
      "VENUE", "@VNAME is a @VTYPE held in @COUNTRY."));

  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "WRITES", "PAPER", "@NAME authored %PAPER_LIST%"));
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "PAPER", "VENUE", "@TITLE appeared in @VNAME."));
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "VENUE", "PAPER", "@VNAME published %PAPER_LIST%"));
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "PAPER", "KEYWORD", "@TITLE is about @KW."));
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "KEYWORD", "PAPER", "Work on @KW includes %PAPER_LIST%"));
  // CITES is a heading-less link relation: its outgoing edge speaks for the
  // citing paper (the nearest ancestor with a heading attribute).
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "CITES", "PAPER", "@TITLE cites %PAPER_LIST%"));
  return catalog;
}

Result<BibliographyDataset> BibliographyDataset::Create(
    const BibliographyConfig& config) {
  auto db = std::make_unique<Database>("bibliography");
  PRECIS_RETURN_NOT_OK(CreateSchema(db.get()));
  PRECIS_RETURN_NOT_OK(Populate(db.get(), config));
  if (config.create_indexes) {
    PRECIS_RETURN_NOT_OK(CreateJoinIndexes(db.get()));
  }
  PRECIS_RETURN_NOT_OK(db->ValidateForeignKeys());
  auto graph = BuildBibliographyGraph();
  if (!graph.ok()) return graph.status();
  db->ResetStats();
  return BibliographyDataset(
      std::move(db), std::make_unique<SchemaGraph>(std::move(*graph)));
}

}  // namespace precis
