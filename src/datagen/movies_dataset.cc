#include "datagen/movies_dataset.h"

#include <array>
#include <string>
#include <vector>

namespace precis {

namespace {

constexpr std::array<const char*, 28> kFirstNames = {
    "Alice",  "Carlos", "Dmitri",  "Elena",   "Farid",  "Greta",  "Hiro",
    "Ingrid", "Jorge",  "Katrin",  "Liam",    "Marta",  "Nikos",  "Olga",
    "Pedro",  "Quinn",  "Rosa",    "Stefan",  "Talia",  "Umberto", "Vera",
    "Walter", "Ximena", "Yannis",  "Zoe",     "Amara",  "Bruno",  "Chloe"};

constexpr std::array<const char*, 26> kLastNames = {
    "Anderson",  "Bergman", "Costa",    "Dimitriou", "Eriksson", "Fontaine",
    "Garcia",    "Hoffman", "Ivanov",   "Jensen",    "Kowalski", "Larsen",
    "Moreau",    "Nakamura", "Olsen",   "Papadakis", "Quintero", "Rossi",
    "Schneider", "Takahashi", "Ueda",   "Vasquez",   "Weber",    "Xanthos",
    "Yamamoto",  "Zimmer"};

constexpr std::array<const char*, 22> kTitleAdjectives = {
    "Silent",  "Crimson", "Endless", "Hidden",   "Golden", "Broken",
    "Distant", "Electric", "Frozen", "Gentle",   "Hollow", "Iron",
    "Jagged",  "Lonely",  "Midnight", "Northern", "Pale",   "Quiet",
    "Restless", "Scarlet", "Twisted", "Velvet"};

constexpr std::array<const char*, 22> kTitleNouns = {
    "Horizon", "River",  "Garden",  "Mirror", "Station", "Harbour",
    "Letter",  "Shadow", "Journey", "Window", "Bridge",  "Orchard",
    "Empire",  "Winter", "Voyage",  "Echo",   "Carousel", "Lantern",
    "Meadow",  "Tide",   "Compass", "Sonata"};

constexpr std::array<const char*, 12> kGenres = {
    "Drama",    "Comedy",  "Thriller", "Romance",     "Crime",  "Adventure",
    "Fantasy",  "Mystery", "Western",  "Documentary", "Horror", "Musical"};

constexpr std::array<const char*, 10> kRegions = {
    "Center",  "Plaka",   "Kifisia",  "Glyfada", "Marousi",
    "Piraeus", "Chalandri", "Pagrati", "Koukaki", "Exarchia"};

constexpr std::array<const char*, 12> kRoles = {
    "Detective", "Professor", "Pianist",  "Nurse",    "Captain", "Journalist",
    "Painter",   "Drifter",   "Heiress",  "Gambler",  "Priest",  "Architect"};

constexpr std::array<const char*, 8> kAwardCategories = {
    "Best Picture",  "Best Director",  "Best Actor",   "Best Actress",
    "Best Screenplay", "Best Cinematography", "Best Score", "Best Editing"};

constexpr std::array<const char*, 8> kCountries = {
    "USA",   "France", "Italy", "Japan",
    "Greece", "Sweden", "Spain", "Germany"};

constexpr std::array<const char*, 10> kCities = {
    "Paris, France",     "Athens, Greece",   "Rome, Italy",
    "Tokyo, Japan",      "Stockholm, Sweden", "Madrid, Spain",
    "Berlin, Germany",   "Vienna, Austria",  "Lisbon, Portugal",
    "Dublin, Ireland"};

Status CreateSchema(Database* db, bool include_auxiliary) {
  auto make = [&](const std::string& name,
                  std::vector<AttributeSchema> attrs,
                  const std::string& pk) -> Status {
    RelationSchema schema(name, std::move(attrs));
    PRECIS_RETURN_NOT_OK(schema.SetPrimaryKey(pk));
    return db->CreateRelation(std::move(schema));
  };

  PRECIS_RETURN_NOT_OK(make("THEATRE",
                            {{"tid", DataType::kInt64},
                             {"name", DataType::kString},
                             {"phone", DataType::kString},
                             {"region", DataType::kString}},
                            "tid"));
  PRECIS_RETURN_NOT_OK(make("PLAY",
                            {{"pid", DataType::kInt64},
                             {"tid", DataType::kInt64},
                             {"mid", DataType::kInt64},
                             {"date", DataType::kString}},
                            "pid"));
  PRECIS_RETURN_NOT_OK(make("GENRE",
                            {{"gid", DataType::kInt64},
                             {"mid", DataType::kInt64},
                             {"genre", DataType::kString}},
                            "gid"));
  PRECIS_RETURN_NOT_OK(make("MOVIE",
                            {{"mid", DataType::kInt64},
                             {"title", DataType::kString},
                             {"year", DataType::kInt64},
                             {"did", DataType::kInt64}},
                            "mid"));
  PRECIS_RETURN_NOT_OK(make("CAST",
                            {{"cid", DataType::kInt64},
                             {"mid", DataType::kInt64},
                             {"aid", DataType::kInt64},
                             {"role", DataType::kString}},
                            "cid"));
  PRECIS_RETURN_NOT_OK(make("ACTOR",
                            {{"aid", DataType::kInt64},
                             {"aname", DataType::kString},
                             {"blocation", DataType::kString},
                             {"bdate", DataType::kString}},
                            "aid"));
  PRECIS_RETURN_NOT_OK(make("DIRECTOR",
                            {{"did", DataType::kInt64},
                             {"dname", DataType::kString},
                             {"blocation", DataType::kString},
                             {"bdate", DataType::kString}},
                            "did"));
  if (include_auxiliary) {
    PRECIS_RETURN_NOT_OK(make("AWARD",
                              {{"awid", DataType::kInt64},
                               {"mid", DataType::kInt64},
                               {"category", DataType::kString},
                               {"ayear", DataType::kInt64}},
                              "awid"));
    PRECIS_RETURN_NOT_OK(make("REVIEW",
                              {{"rvid", DataType::kInt64},
                               {"mid", DataType::kInt64},
                               {"score", DataType::kInt64},
                               {"critic", DataType::kString}},
                              "rvid"));
    PRECIS_RETURN_NOT_OK(make("STUDIO",
                              {{"sid", DataType::kInt64},
                               {"sname", DataType::kString},
                               {"country", DataType::kString}},
                              "sid"));
    PRECIS_RETURN_NOT_OK(make("PRODUCED_BY",
                              {{"pbid", DataType::kInt64},
                               {"mid", DataType::kInt64},
                               {"sid", DataType::kInt64}},
                              "pbid"));
  }

  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"PLAY", "tid", "THEATRE", "tid"}));
  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"PLAY", "mid", "MOVIE", "mid"}));
  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"GENRE", "mid", "MOVIE", "mid"}));
  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"MOVIE", "did", "DIRECTOR", "did"}));
  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"CAST", "mid", "MOVIE", "mid"}));
  PRECIS_RETURN_NOT_OK(db->AddForeignKey({"CAST", "aid", "ACTOR", "aid"}));
  if (include_auxiliary) {
    PRECIS_RETURN_NOT_OK(db->AddForeignKey({"AWARD", "mid", "MOVIE", "mid"}));
    PRECIS_RETURN_NOT_OK(db->AddForeignKey({"REVIEW", "mid", "MOVIE", "mid"}));
    PRECIS_RETURN_NOT_OK(
        db->AddForeignKey({"PRODUCED_BY", "mid", "MOVIE", "mid"}));
    PRECIS_RETURN_NOT_OK(
        db->AddForeignKey({"PRODUCED_BY", "sid", "STUDIO", "sid"}));
  }
  return Status::OK();
}

Status AddGraphEdges(SchemaGraph* g, bool include_auxiliary) {
  // Projection edges. Heading attributes (name, title, genre, aname, dname)
  // carry weight 1 — "the edge that connects a heading attribute with the
  // respective relation has a weight 1 and is always present in the result".
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("THEATRE", "name", 1.0));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("THEATRE", "phone", 0.8));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("THEATRE", "region", 0.7));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("THEATRE", "tid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("PLAY", "date", 0.6));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("PLAY", "pid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("PLAY", "tid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("PLAY", "mid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("GENRE", "genre", 1.0));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("GENRE", "gid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("GENRE", "mid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("MOVIE", "title", 1.0));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("MOVIE", "year", 0.9));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("MOVIE", "mid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("MOVIE", "did", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("CAST", "role", 0.7));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("CAST", "cid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("CAST", "mid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("CAST", "aid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("ACTOR", "aname", 1.0));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("ACTOR", "blocation", 0.7));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("ACTOR", "bdate", 0.6));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("ACTOR", "aid", 0.1));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("DIRECTOR", "dname", 1.0));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("DIRECTOR", "blocation", 0.9));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("DIRECTOR", "bdate", 0.9));
  PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("DIRECTOR", "did", 0.1));

  // Join edges (weights per §3.1's discussion and the §3.2 example).
  PRECIS_RETURN_NOT_OK(g->AddJoinEdgePair("GENRE", "MOVIE", "mid", 1.0, 0.9));
  PRECIS_RETURN_NOT_OK(
      g->AddJoinEdgePair("DIRECTOR", "MOVIE", "did", 1.0, 0.8));
  PRECIS_RETURN_NOT_OK(g->AddJoinEdgePair("ACTOR", "CAST", "aid", 1.0, 0.6));
  PRECIS_RETURN_NOT_OK(g->AddJoinEdgePair("CAST", "MOVIE", "mid", 0.9, 0.7));
  PRECIS_RETURN_NOT_OK(g->AddJoinEdgePair("PLAY", "MOVIE", "mid", 1.0, 0.7));
  PRECIS_RETURN_NOT_OK(g->AddJoinEdgePair("PLAY", "THEATRE", "tid", 1.0, 0.3));

  if (include_auxiliary) {
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("AWARD", "category", 0.8));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("AWARD", "ayear", 0.5));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("AWARD", "awid", 0.1));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("AWARD", "mid", 0.1));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("REVIEW", "score", 0.6));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("REVIEW", "critic", 0.5));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("REVIEW", "rvid", 0.1));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("REVIEW", "mid", 0.1));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("STUDIO", "sname", 1.0));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("STUDIO", "country", 0.6));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("STUDIO", "sid", 0.1));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("PRODUCED_BY", "pbid", 0.1));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("PRODUCED_BY", "mid", 0.1));
    PRECIS_RETURN_NOT_OK(g->AddProjectionEdge("PRODUCED_BY", "sid", 0.1));

    // Auxiliary joins stay below the 0.9 threshold used by the Fig. 4
    // reproduction so they never perturb the paper's example.
    PRECIS_RETURN_NOT_OK(g->AddJoinEdgePair("AWARD", "MOVIE", "mid", 1.0, 0.5));
    PRECIS_RETURN_NOT_OK(
        g->AddJoinEdgePair("REVIEW", "MOVIE", "mid", 1.0, 0.4));
    PRECIS_RETURN_NOT_OK(
        g->AddJoinEdgePair("PRODUCED_BY", "MOVIE", "mid", 1.0, 0.3));
    PRECIS_RETURN_NOT_OK(
        g->AddJoinEdgePair("PRODUCED_BY", "STUDIO", "sid", 0.8, 0.6));
  }
  return Status::OK();
}

/// Inserts the paper's §1/§5.3 running-example tuples with ids 1..n.
Status InsertPaperExample(Database* db) {
  auto insert = [&](const std::string& rel, Tuple t) -> Status {
    auto r = db->GetRelation(rel);
    if (!r.ok()) return r.status();
    auto tid = (*r)->Insert(std::move(t));
    if (!tid.ok()) return tid.status();
    return Status::OK();
  };

  PRECIS_RETURN_NOT_OK(insert(
      "DIRECTOR", {int64_t{1}, "Woody Allen", "Brooklyn, New York, USA",
                   "December 1, 1935"}));
  PRECIS_RETURN_NOT_OK(insert(
      "ACTOR", {int64_t{1}, "Woody Allen", "Brooklyn, New York, USA",
                "December 1, 1935"}));
  PRECIS_RETURN_NOT_OK(insert(
      "ACTOR",
      {int64_t{2}, "Scarlett Johansson", "New York, USA", "November 22, 1984"}));

  PRECIS_RETURN_NOT_OK(
      insert("MOVIE", {int64_t{1}, "Match Point", int64_t{2005}, int64_t{1}}));
  PRECIS_RETURN_NOT_OK(insert(
      "MOVIE", {int64_t{2}, "Melinda and Melinda", int64_t{2004}, int64_t{1}}));
  PRECIS_RETURN_NOT_OK(insert(
      "MOVIE", {int64_t{3}, "Anything Else", int64_t{2003}, int64_t{1}}));
  PRECIS_RETURN_NOT_OK(insert(
      "MOVIE", {int64_t{4}, "Hollywood Ending", int64_t{2002}, int64_t{1}}));
  PRECIS_RETURN_NOT_OK(
      insert("MOVIE", {int64_t{5}, "The Curse of the Jade Scorpion",
                       int64_t{2001}, int64_t{1}}));

  PRECIS_RETURN_NOT_OK(insert("GENRE", {int64_t{1}, int64_t{1}, "Drama"}));
  PRECIS_RETURN_NOT_OK(insert("GENRE", {int64_t{2}, int64_t{1}, "Thriller"}));
  PRECIS_RETURN_NOT_OK(insert("GENRE", {int64_t{3}, int64_t{2}, "Comedy"}));
  PRECIS_RETURN_NOT_OK(insert("GENRE", {int64_t{4}, int64_t{2}, "Drama"}));
  PRECIS_RETURN_NOT_OK(insert("GENRE", {int64_t{5}, int64_t{3}, "Comedy"}));
  PRECIS_RETURN_NOT_OK(insert("GENRE", {int64_t{6}, int64_t{3}, "Romance"}));
  PRECIS_RETURN_NOT_OK(insert("GENRE", {int64_t{7}, int64_t{4}, "Comedy"}));
  PRECIS_RETURN_NOT_OK(insert("GENRE", {int64_t{8}, int64_t{5}, "Comedy"}));
  PRECIS_RETURN_NOT_OK(insert("GENRE", {int64_t{9}, int64_t{5}, "Crime"}));

  PRECIS_RETURN_NOT_OK(
      insert("CAST", {int64_t{1}, int64_t{4}, int64_t{1}, "Val Waxman"}));
  PRECIS_RETURN_NOT_OK(
      insert("CAST", {int64_t{2}, int64_t{5}, int64_t{1}, "CW Briggs"}));
  PRECIS_RETURN_NOT_OK(
      insert("CAST", {int64_t{3}, int64_t{1}, int64_t{2}, "Nola Rice"}));

  PRECIS_RETURN_NOT_OK(insert(
      "THEATRE",
      {int64_t{1}, "Odeon Downtown", "+30-210-3623683", "Center"}));
  PRECIS_RETURN_NOT_OK(insert(
      "THEATRE", {int64_t{2}, "Cine Paris", "+30-210-3222071", "Plaka"}));
  PRECIS_RETURN_NOT_OK(
      insert("PLAY", {int64_t{1}, int64_t{1}, int64_t{1}, "2006-01-14"}));
  PRECIS_RETURN_NOT_OK(
      insert("PLAY", {int64_t{2}, int64_t{2}, int64_t{2}, "2006-01-15"}));
  PRECIS_RETURN_NOT_OK(
      insert("PLAY", {int64_t{3}, int64_t{1}, int64_t{3}, "2006-01-16"}));
  return Status::OK();
}

/// Synthetic population; all ids start at kBase to stay clear of the
/// running-example ids.
Status PopulateSynthetic(Database* db, const MoviesConfig& config) {
  constexpr int64_t kBase = 1000;
  Rng rng(config.seed);

  const size_t num_movies = config.num_movies;
  const size_t num_directors = std::max<size_t>(3, num_movies / 10);
  const size_t num_actors = std::max<size_t>(10, num_movies / 2);
  const size_t num_theatres = std::max<size_t>(3, num_movies / 50);
  const size_t num_studios = std::max<size_t>(2, num_movies / 40);

  ZipfSampler director_pick(num_directors, config.zipf_skew);
  ZipfSampler actor_pick(num_actors, config.zipf_skew);
  ZipfSampler studio_pick(num_studios, config.zipf_skew);

  auto person_name = [&](size_t i) {
    std::string name = std::string(kFirstNames[i % kFirstNames.size()]) + " " +
                       kLastNames[(i / kFirstNames.size()) % kLastNames.size()];
    size_t round = i / (kFirstNames.size() * kLastNames.size());
    if (round > 0) name += " " + std::to_string(round + 1);
    return name;
  };
  auto movie_title = [&](size_t i) {
    std::string title =
        std::string("The ") + kTitleAdjectives[i % kTitleAdjectives.size()] +
        " " + kTitleNouns[(i / kTitleAdjectives.size()) % kTitleNouns.size()];
    size_t round = i / (kTitleAdjectives.size() * kTitleNouns.size());
    if (round > 0) title += " " + std::to_string(round + 1);
    return title;
  };

  auto insert = [&](const std::string& rel, Tuple t) -> Status {
    auto r = db->GetRelation(rel);
    if (!r.ok()) return r.status();
    auto tid = (*r)->Insert(std::move(t));
    if (!tid.ok()) return tid.status();
    return Status::OK();
  };

  for (size_t i = 0; i < num_directors; ++i) {
    PRECIS_RETURN_NOT_OK(insert(
        "DIRECTOR",
        {kBase + static_cast<int64_t>(i), person_name(i),
         std::string(kCities[rng.Index(kCities.size())]),
         "March " + std::to_string(rng.Uniform(1, 28)) + ", " +
             std::to_string(rng.Uniform(1920, 1990))}));
  }
  for (size_t i = 0; i < num_actors; ++i) {
    PRECIS_RETURN_NOT_OK(insert(
        "ACTOR",
        {kBase + static_cast<int64_t>(i), person_name(i + 7),
         std::string(kCities[rng.Index(kCities.size())]),
         "June " + std::to_string(rng.Uniform(1, 28)) + ", " +
             std::to_string(rng.Uniform(1930, 2000))}));
  }
  for (size_t i = 0; i < num_theatres; ++i) {
    PRECIS_RETURN_NOT_OK(insert(
        "THEATRE",
        {kBase + static_cast<int64_t>(i),
         std::string("Cinema ") + kTitleNouns[i % kTitleNouns.size()] + " " +
             std::to_string(i),
         "+30-210-" + std::to_string(3000000 + rng.Uniform(0, 999999)),
         std::string(kRegions[rng.Index(kRegions.size())])}));
  }
  if (config.include_auxiliary_relations) {
    for (size_t i = 0; i < num_studios; ++i) {
      PRECIS_RETURN_NOT_OK(insert(
          "STUDIO", {kBase + static_cast<int64_t>(i),
                     std::string(kTitleNouns[i % kTitleNouns.size()]) +
                         " Pictures " + std::to_string(i),
                     std::string(kCountries[rng.Index(kCountries.size())])}));
    }
  }

  int64_t gid = kBase;
  int64_t cid = kBase;
  int64_t pid = kBase;
  int64_t pbid = kBase;
  for (size_t i = 0; i < num_movies; ++i) {
    int64_t mid = kBase + static_cast<int64_t>(i);
    int64_t did = kBase + static_cast<int64_t>(director_pick.Sample(&rng));
    PRECIS_RETURN_NOT_OK(insert(
        "MOVIE", {mid, movie_title(i), rng.Uniform(1950, 2025), did}));

    // 1-3 genres, distinct.
    size_t n_genres = static_cast<size_t>(rng.Uniform(1, 3));
    std::vector<size_t> gpick =
        rng.SampleWithoutReplacement(kGenres.size(), n_genres);
    for (size_t gp : gpick) {
      PRECIS_RETURN_NOT_OK(
          insert("GENRE", {gid++, mid, std::string(kGenres[gp])}));
    }

    // 3 cast members (may repeat actors across movies; Zipf-skewed).
    for (int k = 0; k < 3; ++k) {
      int64_t aid = kBase + static_cast<int64_t>(actor_pick.Sample(&rng));
      PRECIS_RETURN_NOT_OK(
          insert("CAST", {cid++, mid, aid,
                          std::string(kRoles[rng.Index(kRoles.size())])}));
    }

    // 0-2 plays.
    size_t n_plays = static_cast<size_t>(rng.Uniform(0, 2));
    for (size_t k = 0; k < n_plays; ++k) {
      int64_t tid = kBase + static_cast<int64_t>(rng.Index(num_theatres));
      PRECIS_RETURN_NOT_OK(insert(
          "PLAY", {pid++, tid, mid,
                   "2026-0" + std::to_string(rng.Uniform(1, 9)) + "-" +
                       std::to_string(rng.Uniform(10, 28))}));
    }

    if (config.include_auxiliary_relations) {
      int64_t sid = kBase + static_cast<int64_t>(studio_pick.Sample(&rng));
      PRECIS_RETURN_NOT_OK(insert("PRODUCED_BY", {pbid++, mid, sid}));
    }
  }

  if (config.include_auxiliary_relations) {
    size_t num_awards = num_movies / 5;
    for (size_t i = 0; i < num_awards; ++i) {
      int64_t mid = kBase + static_cast<int64_t>(rng.Index(num_movies));
      PRECIS_RETURN_NOT_OK(insert(
          "AWARD",
          {kBase + static_cast<int64_t>(i), mid,
           std::string(kAwardCategories[rng.Index(kAwardCategories.size())]),
           rng.Uniform(1950, 2026)}));
    }
    size_t num_reviews = num_movies / 2;
    for (size_t i = 0; i < num_reviews; ++i) {
      int64_t mid = kBase + static_cast<int64_t>(rng.Index(num_movies));
      PRECIS_RETURN_NOT_OK(
          insert("REVIEW", {kBase + static_cast<int64_t>(i), mid,
                            rng.Uniform(1, 10), person_name(rng.Index(200))}));
    }
  }
  return Status::OK();
}

Status CreateJoinIndexes(Database* db, bool include_auxiliary) {
  auto index = [&](const std::string& rel, const std::string& attr) -> Status {
    auto r = db->GetRelation(rel);
    if (!r.ok()) return r.status();
    return (*r)->CreateIndex(attr);
  };
  PRECIS_RETURN_NOT_OK(index("THEATRE", "tid"));
  PRECIS_RETURN_NOT_OK(index("PLAY", "tid"));
  PRECIS_RETURN_NOT_OK(index("PLAY", "mid"));
  PRECIS_RETURN_NOT_OK(index("GENRE", "mid"));
  PRECIS_RETURN_NOT_OK(index("MOVIE", "mid"));
  PRECIS_RETURN_NOT_OK(index("MOVIE", "did"));
  PRECIS_RETURN_NOT_OK(index("CAST", "mid"));
  PRECIS_RETURN_NOT_OK(index("CAST", "aid"));
  PRECIS_RETURN_NOT_OK(index("ACTOR", "aid"));
  PRECIS_RETURN_NOT_OK(index("DIRECTOR", "did"));
  if (include_auxiliary) {
    PRECIS_RETURN_NOT_OK(index("AWARD", "mid"));
    PRECIS_RETURN_NOT_OK(index("REVIEW", "mid"));
    PRECIS_RETURN_NOT_OK(index("STUDIO", "sid"));
    PRECIS_RETURN_NOT_OK(index("PRODUCED_BY", "mid"));
    PRECIS_RETURN_NOT_OK(index("PRODUCED_BY", "sid"));
  }
  return Status::OK();
}

}  // namespace

Result<SchemaGraph> BuildMoviesGraph(bool include_auxiliary_relations) {
  Database schema_only("movies_schema");
  PRECIS_RETURN_NOT_OK(
      CreateSchema(&schema_only, include_auxiliary_relations));
  auto graph = SchemaGraph::FromDatabase(schema_only);
  if (!graph.ok()) return graph.status();
  PRECIS_RETURN_NOT_OK(AddGraphEdges(&*graph, include_auxiliary_relations));
  PRECIS_RETURN_NOT_OK(graph->Validate());
  return graph;
}

Result<MoviesDataset> MoviesDataset::Create(const MoviesConfig& config) {
  auto db = std::make_unique<Database>("movies");
  PRECIS_RETURN_NOT_OK(
      CreateSchema(db.get(), config.include_auxiliary_relations));
  if (config.include_paper_example) {
    PRECIS_RETURN_NOT_OK(InsertPaperExample(db.get()));
  }
  PRECIS_RETURN_NOT_OK(PopulateSynthetic(db.get(), config));
  if (config.create_indexes) {
    PRECIS_RETURN_NOT_OK(
        CreateJoinIndexes(db.get(), config.include_auxiliary_relations));
  }
  PRECIS_RETURN_NOT_OK(db->ValidateForeignKeys());

  auto graph = BuildMoviesGraph(config.include_auxiliary_relations);
  if (!graph.ok()) return graph.status();
  auto graph_ptr = std::make_unique<SchemaGraph>(std::move(*graph));
  db->ResetStats();
  return MoviesDataset(std::move(db), std::move(graph_ptr), config);
}

}  // namespace precis
