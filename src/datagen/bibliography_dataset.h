// A second domain: a bibliography database (DBLP-like).
//
// The précis machinery is schema-agnostic — the paper's framework never
// depends on the movies schema. This dataset proves it on a different
// topology:
//
//   AUTHOR(auid*, name, affiliation)      WRITES(wid*, auid, pid)
//   PAPER(pid*, title, pyear, vid)        VENUE(vid*, vname, vtype, country)
//   CITES(ctid*, citing, cited)           KEYWORD(kid*, pid, kw)
//
// Two things the movies schema cannot exercise:
//  * join edges whose end-point attributes have different names — the
//    citation edges join CITES.citing and CITES.cited to PAPER.pid;
//  * a self-referential relation pair (PAPER -> CITES -> PAPER). Note the
//    paper's path model is relation-acyclic, so a path that left PAPER can
//    never re-enter it: a précis about a paper includes its CITES rows but
//    does not transitively expand the cited papers. That is a genuine
//    limitation of the ICDE'06 model, surfaced (and tested) here.

#ifndef PRECIS_DATAGEN_BIBLIOGRAPHY_DATASET_H_
#define PRECIS_DATAGEN_BIBLIOGRAPHY_DATASET_H_

#include <memory>

#include "common/result.h"
#include "graph/schema_graph.h"
#include "storage/database.h"
#include "translator/catalog.h"

namespace precis {

/// \brief Scaling knobs for the synthetic bibliography.
struct BibliographyConfig {
  size_t num_papers = 500;
  uint64_t seed = 7;
  bool create_indexes = true;
};

/// \brief A generated bibliography database plus its annotated schema graph.
class BibliographyDataset {
 public:
  static Result<BibliographyDataset> Create(const BibliographyConfig& config);

  Database& db() { return *db_; }
  const Database& db() const { return *db_; }
  SchemaGraph& graph() { return *graph_; }
  const SchemaGraph& graph() const { return *graph_; }

 private:
  BibliographyDataset(std::unique_ptr<Database> db,
                      std::unique_ptr<SchemaGraph> graph)
      : db_(std::move(db)), graph_(std::move(graph)) {}

  std::unique_ptr<Database> db_;
  std::unique_ptr<SchemaGraph> graph_;
};

/// \brief The paper-weighted schema graph for the bibliography schema.
Result<SchemaGraph> BuildBibliographyGraph();

/// \brief Translation annotations for the bibliography schema.
Result<TemplateCatalog> BuildBibliographyTemplateCatalog();

}  // namespace precis

#endif  // PRECIS_DATAGEN_BIBLIOGRAPHY_DATASET_H_
