#include "datagen/movies_templates.h"

namespace precis {

Result<TemplateCatalog> BuildMoviesTemplateCatalog() {
  TemplateCatalog catalog;

  // Heading attributes ("MOVIE should have TITLE as its heading attribute";
  // CAST, PLAY, GENRE and PRODUCED_BY are link relations without one).
  catalog.SetHeadingAttribute("THEATRE", "name");
  catalog.SetHeadingAttribute("MOVIE", "title");
  catalog.SetHeadingAttribute("ACTOR", "aname");
  catalog.SetHeadingAttribute("DIRECTOR", "dname");
  catalog.SetHeadingAttribute("GENRE", "genre");
  catalog.SetHeadingAttribute("STUDIO", "sname");

  // The paper's DEFINE MOVIE_LIST as
  //   [i<arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]), }
  //   [i=arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]).}
  PRECIS_RETURN_NOT_OK(catalog.DefineMacro(
      "MOVIE_LIST",
      "[i<arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]), }"
      "[i=arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]).}"));

  // Clause templates for subject relations (labels of projection edges).
  PRECIS_RETURN_NOT_OK(catalog.SetProjectionTemplate(
      "DIRECTOR", "@DNAME was born on @BDATE in @BLOCATION."));
  PRECIS_RETURN_NOT_OK(catalog.SetProjectionTemplate(
      "ACTOR", "@ANAME was born on @BDATE in @BLOCATION."));
  PRECIS_RETURN_NOT_OK(catalog.SetProjectionTemplate(
      "THEATRE", "@NAME is a theatre in @REGION (phone @PHONE)."));
  PRECIS_RETURN_NOT_OK(catalog.SetProjectionTemplate(
      "STUDIO", "@SNAME is a studio based in @COUNTRY."));

  // Template labels of join edges ("expr_1 = 'As a director,'
  // expr_2 = "'s work includes" in the paper's formula).
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "DIRECTOR", "MOVIE",
      "As a director, @DNAME's work includes %MOVIE_LIST%"));
  // "The label of a join edge that involves a relation without a heading
  // attribute signifies the relationship between the previous and subsequent
  // relations": CAST -> MOVIE speaks for the ACTOR behind it.
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "CAST", "MOVIE",
      "As an actor, @ANAME's work includes %MOVIE_LIST%"));
  PRECIS_RETURN_NOT_OK(
      catalog.SetJoinTemplate("MOVIE", "GENRE", "@TITLE is @GENRE."));
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "GENRE", "MOVIE", "@GENRE movies include %MOVIE_LIST%"));
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "MOVIE", "DIRECTOR", "@TITLE was directed by @DNAME."));
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "CAST", "ACTOR", "@ANAME appears as @ROLE."));
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "PLAY", "THEATRE", "It plays at @NAME (@REGION)."));
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "MOVIE", "AWARD", "@TITLE received @CATEGORY."));
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "MOVIE", "REVIEW", "@TITLE was scored @SCORE by critics."));
  PRECIS_RETURN_NOT_OK(catalog.SetJoinTemplate(
      "PRODUCED_BY", "STUDIO", "@TITLE was produced by @SNAME."));

  return catalog;
}

}  // namespace precis
