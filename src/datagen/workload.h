// Workload helpers for experiments: random weight sets, random join chains,
// random seed tuples — the methodology of the paper's §6.

#ifndef PRECIS_DATAGEN_WORKLOAD_H_
#define PRECIS_DATAGEN_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/schema_graph.h"
#include "storage/database.h"
#include "precis/result_schema.h"

namespace precis {

/// \brief A connected acyclic set of relations: `start`, then one new
/// relation per join edge. Each edge departs from a relation already in the
/// set (so the edges form a tree rooted at `start`, in insertion order).
/// `edges.size() + 1` relations total.
struct JoinChain {
  RelationNodeId start = 0;
  std::vector<const JoinEdge*> edges;

  size_t num_relations() const { return edges.size() + 1; }
};

/// \brief Picks a random connected set of `num_relations` distinct relations
/// joined by edges forming a tree. This realizes the paper's "sets of
/// relations, making sure that there is no relation in any set that does not
/// join with another relation of this set".
///
/// Fails if the graph admits no such set (after bounded attempts).
Result<JoinChain> RandomJoinChain(const SchemaGraph& graph, Rng* rng,
                                  size_t num_relations);

/// \brief Builds a ResultSchema that covers exactly the chain: `start` is
/// the (single) token relation, every relation of the chain is included,
/// and every attribute that has a projection edge is projected. Used by the
/// Fig. 8 / Fig. 9 benches, which drive the Result Database Generator
/// directly with a known shape.
Result<ResultSchema> SchemaForChain(const SchemaGraph& graph,
                                    const JoinChain& chain);

/// \brief `k` distinct random tuple ids from a relation (fewer if the
/// relation is smaller) — the paper's "random sets of tuples as the seed".
Result<std::vector<Tid>> RandomSeedTids(const Database& db,
                                        const std::string& relation, Rng* rng,
                                        size_t k);

/// \brief A random token value drawn from a string attribute of a relation
/// (for end-to-end query workloads).
Result<std::string> RandomToken(const Database& db,
                                const std::string& relation,
                                const std::string& attribute, Rng* rng);

}  // namespace precis

#endif  // PRECIS_DATAGEN_WORKLOAD_H_
