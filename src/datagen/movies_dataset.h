// The movies database of the paper's running example (Fig. 1), scaled.
//
// Schema (primary keys starred):
//   THEATRE(tid*, name, phone, region)         PLAY(pid*, tid, mid, date)
//   GENRE(gid*, mid, genre)                    MOVIE(mid*, title, year, did)
//   CAST(cid*, mid, aid, role)                 ACTOR(aid*, aname, blocation, bdate)
//   DIRECTOR(did*, dname, blocation, bdate)
//
// plus four auxiliary relations (not in the paper's figure, used to give the
// graph enough depth for the n_R <= 8 sweeps of Fig. 9):
//   AWARD(awid*, mid, category, ayear)         REVIEW(rvid*, mid, score, critic)
//   STUDIO(sid*, sname, country)               PRODUCED_BY(pbid*, mid, sid)
//
// Deviation from the paper's figure: PLAY, GENRE, CAST and PRODUCED_BY get
// surrogate primary keys (the paper leaves them keyless link tables); this
// changes nothing about the graph or the algorithms and keeps every relation
// uniquely addressable.
//
// The default edge weights reproduce the paper's §3.2 weight-transfer
// example (PHONE over THEATRE = 0.8, over MOVIE = 0.7 * 1 * 0.8 = 0.56) and
// the Fig. 4 result schema for {"Woody Allen"} at threshold w >= 0.9.

#ifndef PRECIS_DATAGEN_MOVIES_DATASET_H_
#define PRECIS_DATAGEN_MOVIES_DATASET_H_

#include <memory>

#include "common/random.h"
#include "common/result.h"
#include "graph/schema_graph.h"
#include "storage/database.h"

namespace precis {

/// \brief Scaling knobs for the synthetic population.
struct MoviesConfig {
  /// Number of synthetic movies (the paper's IMDB dump had "over 34k films").
  size_t num_movies = 1000;
  /// RNG seed; two runs with equal config produce identical databases.
  uint64_t seed = 42;
  /// Embed the Woody Allen running-example tuples (movies, genres, cast,
  /// birth data) exactly as the paper's §5.3 narrative expects.
  bool include_paper_example = true;
  /// Create hash indexes on all join attributes ("we created indexes on all
  /// join attributes", §6).
  bool create_indexes = true;
  /// Include the four auxiliary relations (AWARD, REVIEW, STUDIO,
  /// PRODUCED_BY) used by the long-chain benchmarks.
  bool include_auxiliary_relations = true;
  /// Zipf skew of join fan-outs (0 = uniform); a few directors/actors
  /// account for many movies, like the real IMDB.
  double zipf_skew = 0.7;
};

/// \brief A generated movies database plus its annotated schema graph.
///
/// Held behind unique_ptr members so the object is cheaply movable while
/// PrecisEngine and ResultSchema instances keep stable pointers into it.
class MoviesDataset {
 public:
  static Result<MoviesDataset> Create(const MoviesConfig& config);

  Database& db() { return *db_; }
  const Database& db() const { return *db_; }
  SchemaGraph& graph() { return *graph_; }
  const SchemaGraph& graph() const { return *graph_; }
  const MoviesConfig& config() const { return config_; }

 private:
  MoviesDataset(std::unique_ptr<Database> db,
                std::unique_ptr<SchemaGraph> graph, MoviesConfig config)
      : db_(std::move(db)), graph_(std::move(graph)), config_(config) {}

  std::unique_ptr<Database> db_;
  std::unique_ptr<SchemaGraph> graph_;
  MoviesConfig config_;
};

/// \brief Builds just the paper-weighted schema graph for the movie schema
/// (useful for schema-only tests and the Fig. 7 bench).
Result<SchemaGraph> BuildMoviesGraph(bool include_auxiliary_relations = true);

}  // namespace precis

#endif  // PRECIS_DATAGEN_MOVIES_DATASET_H_
