#include "server/json_lite.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace precis {

namespace {

/// Nesting bound: request bodies are flat objects; anything deeper than
/// this is hostile or broken input, not a precis query.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    PRECIS_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseLiteral(const char* literal) {
    size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      return Error(std::string("invalid literal (expected '") + literal +
                   "')");
    }
    pos_ += len;
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ParseLiteral("null");
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return ParseLiteral("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return ParseLiteral("false");
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue element;
      PRECIS_RETURN_NOT_OK(ParseValue(&element, depth + 1));
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      PRECIS_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      PRECIS_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      PRECIS_RETURN_NOT_OK(Expect(':'));
      JsonValue member;
      PRECIS_RETURN_NOT_OK(ParseValue(&member, depth + 1));
      out->object.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      PRECIS_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp;
          PRECIS_RETURN_NOT_OK(ParseHex4(&cp));
          // Surrogate pair: a high surrogate must be followed by \uDC00-
          // \uDFFF; combine into one code point.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              uint32_t lo;
              PRECIS_RETURN_NOT_OK(ParseHex4(&lo));
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return Error("lone high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return Error("invalid number");
    }
    // RFC 8259: no leading zeros ("0" alone is fine, "01" is not).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token = text_.substr(start, pos_ - start);
    out->kind = JsonValue::Kind::kNumber;
    errno = 0;
    out->number = std::strtod(token.c_str(), nullptr);
    if (integral) {
      errno = 0;
      long long v = std::strtoll(token.c_str(), nullptr, 10);
      if (errno != ERANGE) {
        out->is_integer = true;
        out->integer = static_cast<int64_t>(v);
      }
    }
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;  // last wins
  }
  return found;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace precis
