#include "server/http_server.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "common/symbol_table.h"
#include "precis/json_export.h"
#include "server/request_parse.h"

namespace precis {

namespace server_internal {

using Clock = std::chrono::steady_clock;

/// Shared by the server object, its loops, and every in-flight completion
/// callback, so a late callback (service still draining after Stop) never
/// touches freed memory.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> connections_open{0};
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> parse_errors{0};
  std::atomic<uint64_t> responses_2xx{0};
  std::atomic<uint64_t> responses_4xx{0};
  std::atomic<uint64_t> responses_503{0};
  std::atomic<uint64_t> responses_504{0};
  std::atomic<uint64_t> responses_5xx{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> slow_client_timeouts{0};

  /// Socket-chaos ledgers (ServerChaosConfig): per-boundary decision
  /// counters (the deterministic FaultMix stream index) and injections.
  std::atomic<uint64_t> chaos_accept_checks{0};
  std::atomic<uint64_t> chaos_read_checks{0};
  std::atomic<uint64_t> chaos_write_checks{0};
  std::atomic<uint64_t> chaos_short_checks{0};
  std::atomic<uint64_t> chaos_accept_errors{0};
  std::atomic<uint64_t> chaos_read_errors{0};
  std::atomic<uint64_t> chaos_write_errors{0};
  std::atomic<uint64_t> chaos_short_writes{0};

  void CountResponse(int status) {
    if (status < 400) {
      responses_2xx.fetch_add(1, std::memory_order_relaxed);
    } else if (status == 503) {
      responses_503.fetch_add(1, std::memory_order_relaxed);
    } else if (status == 504) {
      responses_504.fetch_add(1, std::memory_order_relaxed);
    } else if (status < 500) {
      responses_4xx.fetch_add(1, std::memory_order_relaxed);
    } else {
      responses_5xx.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

struct Connection;

/// One seeded chaos decision: a pure function of (seed, stream, index),
/// the index drawn from the stream's check counter. Streams: 0 = accept,
/// 1 = read, 2 = write, 3 = short-write.
bool ChaosFire(const ServerChaosConfig& chaos, double probability,
               uint64_t stream, std::atomic<uint64_t>* counter) {
  if (probability <= 0.0) return false;
  uint64_t idx = counter->fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t h = FaultMix(chaos.seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^
                        (idx * 0xbf58476d1ce4e5b9ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < probability;
}

/// One poll loop's inbox. Callbacks running on service worker threads
/// reach their loop exclusively through this: push under the mutex, then
/// Notify() the self-pipe. `alive` flips false only after the loop thread
/// has been joined, so a late callback degrades to a silent drop.
struct Mailbox {
  std::mutex mu;
  bool alive = true;
  WakeupPipe wake;
  std::vector<int> incoming;
  std::vector<std::shared_ptr<Connection>> ready;
};

/// One pending slice of output. Either `bytes` owns the data (headers,
/// error bodies) or `shared` aliases an immutable string held elsewhere —
/// the engine's memoized JSON render — which the loop writes straight to
/// the wire without ever copying it into a per-connection buffer
/// (DESIGN.md §16). `off` tracks how much of this chunk has been written.
struct OutChunk {
  std::string bytes;
  std::shared_ptr<const std::string> shared;
  size_t off = 0;

  const char* data() const {
    return (shared != nullptr ? *shared : bytes).data() + off;
  }
  size_t size() const {
    return (shared != nullptr ? *shared : bytes).size() - off;
  }
};

/// Per-connection state machine. The owning loop thread drives all state
/// transitions except response delivery: QueueResponse (any thread)
/// appends chunks to `outq` under `mu` and clears `in_flight`.
struct Connection {
  Connection(int fd_in, std::shared_ptr<Mailbox> mailbox_in,
             std::shared_ptr<ServerStats> stats_in, HttpParserLimits limits)
      : fd(fd_in),
        mailbox(std::move(mailbox_in)),
        stats(std::move(stats_in)),
        parser(limits),
        last_activity(Clock::now()) {}

  const int fd;
  const std::shared_ptr<Mailbox> mailbox;
  const std::shared_ptr<ServerStats> stats;
  HttpRequestParser parser;  // loop thread only

  std::mutex mu;  // guards everything below
  std::deque<OutChunk> outq;
  bool in_flight = false;
  bool close_after_write = false;
  bool closed = false;
  bool error_sent = false;

  Clock::time_point last_activity;  // loop thread only
  /// When the currently-buffered partial request began (loop thread only).
  /// Bounds *total* request receive time — a slowloris client trickling
  /// bytes refreshes last_activity but never this.
  Clock::time_point request_start;
  bool request_started = false;
};

namespace {

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.SetHeader("Content-Type", "application/json");
  response.body = "{\"error\":\"" + JsonEscape(message) + "\"}\n";
  return response;
}

/// Maps a finished ServiceResponse onto the wire (DESIGN.md §14): the
/// body of a successful answer is *exactly* AnswerToJson(answer) — byte-
/// identical to what an in-process caller would serialize — with the
/// execution meta-data in X-Precis-* headers so the body stays pristine.
HttpResponse BuildQueryResponse(const ServiceResponse& response) {
  HttpResponse http;
  if (!response.status.ok()) {
    int status;
    switch (response.status.code()) {
      case StatusCode::kOverloaded:
        status = 503;  // admission shedding -> backpressure
        break;
      case StatusCode::kInvalidArgument:
        status = 400;
        break;
      case StatusCode::kNotFound:
        status = 404;
        break;
      default:
        status = 500;
    }
    http = JsonError(status, response.status.ToString());
    if (status == 503) http.SetHeader("Retry-After", "1");
    return http;
  }
  // A deadline-cut query yields a well-formed *partial* answer; serve it
  // under 504 so open-loop clients can separate timeouts from full
  // answers without parsing the report.
  http.status =
      response.stop_reason == StopReason::kDeadlineExceeded ? 504 : 200;
  http.SetHeader("Content-Type", "application/json");
  http.SetHeader("X-Precis-Stop-Reason",
                 StopReasonToString(response.stop_reason));
  http.SetHeader("X-Precis-Degraded", response.degraded ? "true" : "false");
  http.SetHeader("X-Precis-Latency-Us",
                 std::to_string(static_cast<uint64_t>(
                     response.latency_seconds * 1e6)));
  http.SetHeader("X-Precis-Retries", std::to_string(response.retries));
  if (response.body_json != nullptr) {
    // Fast path: the service already rendered (or recalled the memoized)
    // JSON body; share the bytes all the way to the socket.
    http.shared_body = response.body_json;
  } else {
    http.body = AnswerToJson(*response.answer);
  }
  return http;
}

/// Thread-safe response delivery: serializes the header block, enqueues it
/// plus the body chunk (shared bytes alias the memoized render; owned
/// bytes move), and wakes the owning poll loop. Safe to call from service
/// worker threads, the shed path (synchronous), and the loop thread
/// itself. Takes the response by value so an owned body can be moved into
/// the queue instead of copied.
void QueueResponse(const std::shared_ptr<Connection>& conn,
                   HttpResponse response, bool keep_alive,
                   bool head_only = false) {
  conn->stats->CountResponse(response.status);
  OutChunk header;
  header.bytes = SerializeHttpHeaders(response, keep_alive);
  OutChunk body;
  if (!head_only) {
    if (response.shared_body != nullptr) {
      body.shared = std::move(response.shared_body);
    } else {
      body.bytes = std::move(response.body);
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;  // peer went away while the query ran
    conn->outq.push_back(std::move(header));
    if (body.size() > 0) conn->outq.push_back(std::move(body));
    conn->in_flight = false;
    if (!keep_alive) conn->close_after_write = true;
  }
  std::lock_guard<std::mutex> lock(conn->mailbox->mu);
  if (!conn->mailbox->alive) return;
  conn->mailbox->ready.push_back(conn);
  conn->mailbox->wake.Notify();
}

}  // namespace

/// One poll()-driven I/O thread owning a disjoint set of connections.
class IoLoop {
 public:
  IoLoop(HttpServer* server, const std::map<std::string, PrecisService*>* services,
         const HttpServer::Options* options, const ServerChaosConfig* chaos,
         std::shared_ptr<ServerStats> stats, const std::atomic<bool>* stopping)
      : server_(server),
        services_(services),
        options_(options),
        chaos_(chaos),
        stats_(std::move(stats)),
        stopping_(stopping),
        mailbox_(std::make_shared<Mailbox>()) {}

  void Start() {
    thread_ = std::thread([this] { Run(); });
  }

  void Notify() {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    mailbox_->wake.Notify();
  }

  /// Hands a freshly accepted socket to this loop (acceptor thread).
  void Adopt(int fd) {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    mailbox_->incoming.push_back(fd);
    mailbox_->wake.Notify();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// After Join(): late service callbacks must drop instead of notifying.
  void SealMailbox() {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    mailbox_->alive = false;
  }

 private:
  void Run() {
    std::vector<pollfd> pfds;
    std::vector<std::shared_ptr<Connection>> polled;
    bool draining = false;
    Clock::time_point drain_deadline{};
    for (;;) {
      pfds.clear();
      polled.clear();
      pfds.push_back({mailbox_->wake.read_fd(), POLLIN, 0});
      for (auto& [fd, conn] : connections_) {
        pfds.push_back({fd, Interest(conn), 0});
        polled.push_back(conn);
      }
      (void)poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 250);
      mailbox_->wake.Drain();

      // Read the stop flag *after* the wakeup so the very poll round that
      // Stop() interrupts already tears down idle connections (instead of
      // burning one more 250 ms tick).
      const bool stopping = stopping_->load(std::memory_order_relaxed);
      if (stopping && !draining) {
        draining = true;
        drain_deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options_->drain_timeout_seconds));
      }

      std::vector<int> incoming;
      std::vector<std::shared_ptr<Connection>> ready;
      {
        std::lock_guard<std::mutex> lock(mailbox_->mu);
        incoming.swap(mailbox_->incoming);
        ready.swap(mailbox_->ready);
      }
      for (int fd : incoming) {
        if (stopping) {
          CloseFd(fd);
          stats_->connections_open.fetch_sub(1, std::memory_order_relaxed);
          continue;
        }
        (void)SetNonBlocking(fd);
        (void)SetTcpNoDelay(fd);
        auto conn = std::make_shared<Connection>(
            fd, mailbox_, stats_, options_->parser_limits);
        connections_.emplace(fd, std::move(conn));
      }
      for (const auto& conn : ready) Pump(conn);

      for (size_t i = 0; i < polled.size(); ++i) {
        const auto& conn = polled[i];
        short revents = pfds[i + 1].revents;
        if (revents == 0) continue;
        if (IsClosed(conn)) continue;  // closed by an earlier event
        if (revents & POLLIN) {
          OnReadable(conn);
        } else if (revents & POLLOUT) {
          Pump(conn);
        } else if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
          Close(conn);  // peer reset with nothing to read/write
        }
      }

      Sweep(stopping);
      if (stopping && connections_.empty()) return;
      if (draining && Clock::now() > drain_deadline) {
        // Give up on stragglers (e.g. a peer that never drains its
        // receive buffer); in-flight callbacks see `closed` and drop.
        std::vector<std::shared_ptr<Connection>> all;
        for (auto& [fd, conn] : connections_) all.push_back(conn);
        for (const auto& conn : all) Close(conn);
        return;
      }
    }
  }

  short Interest(const std::shared_ptr<Connection>& conn) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->outq.empty()) return POLLOUT;
    // While a query is in flight nothing is read: pipelined bytes wait in
    // the kernel buffer — natural per-connection backpressure.
    if (!conn->in_flight && !conn->close_after_write) return POLLIN;
    return 0;
  }

  bool IsClosed(const std::shared_ptr<Connection>& conn) {
    std::lock_guard<std::mutex> lock(conn->mu);
    return conn->closed;
  }

  void OnReadable(const std::shared_ptr<Connection>& conn) {
    if (ChaosFire(*chaos_, chaos_->read_error, /*stream=*/1,
                  &stats_->chaos_read_checks)) {
      stats_->chaos_read_errors.fetch_add(1, std::memory_order_relaxed);
      Close(conn);  // injected recv failure: same teardown as ECONNRESET
      return;
    }
    char buf[16384];
    for (;;) {
      ssize_t n = read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        stats_->bytes_read.fetch_add(static_cast<uint64_t>(n),
                                     std::memory_order_relaxed);
        conn->last_activity = Clock::now();
        conn->parser.Feed(buf, static_cast<size_t>(n));
        if (!conn->request_started && conn->parser.mid_request()) {
          conn->request_started = true;
          conn->request_start = conn->last_activity;
        }
        if (conn->parser.complete() || conn->parser.failed()) break;
        continue;
      }
      if (n == 0) {  // EOF: peer is gone
        Close(conn);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      Close(conn);
      return;
    }
    Pump(conn);
  }

  /// Advances the connection state machine as far as it can go without
  /// more I/O readiness: flush writes, finish closes, answer parse
  /// errors, and start the next buffered request.
  void Pump(const std::shared_ptr<Connection>& conn) {
    for (;;) {
      if (!TryWrite(conn)) return;  // connection died mid-write
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->closed) return;
        if (!conn->outq.empty()) return;     // wait POLLOUT
        if (conn->close_after_write) break;               // close below
        if (conn->in_flight) return;  // wait for the service callback
      }
      if (conn->parser.failed()) {
        if (conn->error_sent) return;
        conn->error_sent = true;
        stats_->parse_errors.fetch_add(1, std::memory_order_relaxed);
        QueueResponse(conn,
                      JsonError(conn->parser.error_status(),
                                conn->parser.error_detail()),
                      /*keep_alive=*/false);
        continue;  // loop flushes the error, then closes
      }
      if (!conn->parser.complete()) return;  // need more bytes
      HandleRequest(conn);
      conn->parser.ResetForNext();
      conn->last_activity = Clock::now();
      // Pipelined surplus may already be a partial next request; restart
      // its receive-time clock here so the slowloris bound covers it too.
      conn->request_started = conn->parser.mid_request();
      conn->request_start = conn->last_activity;
    }
    Close(conn);
  }

  /// Routes one complete request. Inline endpoints answer immediately;
  /// /query dispatches to the profile's PrecisService and answers from
  /// the worker's completion callback.
  void HandleRequest(const std::shared_ptr<Connection>& conn) {
    stats_->requests_total.fetch_add(1, std::memory_order_relaxed);
    const HttpRequest& req = conn->parser.request();
    const bool keep_alive =
        req.keep_alive && !stopping_->load(std::memory_order_relaxed);
    const bool head = req.method == "HEAD";

    if (req.target == "/healthz") {
      if (req.method != "GET" && !head) {
        QueueResponse(conn, JsonError(405, "use GET /healthz"), keep_alive);
        return;
      }
      if (server_->draining()) {
        // Drain mode: still serving, but tell the load balancer to pull
        // this instance (and close so it re-resolves immediately).
        HttpResponse response;
        response.status = 503;
        response.SetHeader("Content-Type", "text/plain");
        response.SetHeader("Retry-After", "1");
        response.body = "draining\n";
        QueueResponse(conn, response, /*keep_alive=*/false, head);
        return;
      }
      HttpResponse response;
      response.SetHeader("Content-Type", "text/plain");
      response.body = "ok\n";
      QueueResponse(conn, response, keep_alive, head);
      return;
    }
    if (req.target == "/metrics") {
      if (req.method != "GET" && !head) {
        QueueResponse(conn, JsonError(405, "use GET /metrics"), keep_alive);
        return;
      }
      HttpResponse response;
      response.SetHeader("Content-Type", "application/json");
      response.body = server_->MetricsJson();
      QueueResponse(conn, response, keep_alive, head);
      return;
    }
    if (req.target == "/query") {
      if (req.method != "POST") {
        QueueResponse(conn, JsonError(405, "use POST /query"), keep_alive);
        return;
      }
      auto parsed = ParseQueryRequest(req.body);
      if (!parsed.ok()) {
        QueueResponse(conn, JsonError(400, parsed.status().message()),
                      keep_alive);
        return;
      }
      const std::string& profile =
          parsed->profile.empty() ? "default" : parsed->profile;
      auto it = services_->find(profile);
      if (it == services_->end()) {
        QueueResponse(conn,
                      JsonError(404, "unknown profile '" + profile + "'"),
                      keep_alive);
        return;
      }
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->in_flight = true;
      }
      // Ask the service for the rendered body alongside the answer so a
      // cached render is shared to the socket with zero copies.
      parsed->request.render_body = true;
      // The callback runs on a service worker (or synchronously when
      // shed); it owns the connection via shared_ptr and re-enters the
      // loop through the mailbox only.
      it->second->SubmitAsync(
          std::move(parsed->request),
          [conn, keep_alive](ServiceResponse response) {
            QueueResponse(conn, BuildQueryResponse(response), keep_alive);
          });
      return;
    }
    QueueResponse(conn, JsonError(404, "no such endpoint '" + req.target +
                                           "' (try /query, /metrics, "
                                           "/healthz)"),
                  keep_alive);
  }

  /// Flushes queued chunks with scatter-gather writev — header and shared
  /// body leave in one syscall without ever being concatenated. Returns
  /// false if the connection was closed.
  bool TryWrite(const std::shared_ptr<Connection>& conn) {
    bool dead = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed) return false;
      while (!conn->outq.empty()) {
        constexpr size_t kMaxIov = 8;
        iovec iov[kMaxIov];
        size_t niov = 0;
        for (const OutChunk& chunk : conn->outq) {
          if (niov == kMaxIov) break;
          iov[niov].iov_base = const_cast<char*>(chunk.data());
          iov[niov].iov_len = chunk.size();
          ++niov;
        }
        if (ChaosFire(*chaos_, chaos_->write_error, /*stream=*/2,
                      &stats_->chaos_write_checks)) {
          stats_->chaos_write_errors.fetch_add(1, std::memory_order_relaxed);
          dead = true;  // injected send failure: same teardown as EPIPE
          break;
        }
        if (ChaosFire(*chaos_, chaos_->short_write, /*stream=*/3,
                      &stats_->chaos_short_checks)) {
          // Short write: flush only a small prefix this round, forcing the
          // chunk-offset resume path that real sockets exercise rarely.
          stats_->chaos_short_writes.fetch_add(1, std::memory_order_relaxed);
          niov = 1;
          iov[0].iov_len = std::max<size_t>(1, std::min<size_t>(iov[0].iov_len, 64));
        }
        ssize_t n = writev(conn->fd, iov, static_cast<int>(niov));
        if (n > 0) {
          stats_->bytes_written.fetch_add(static_cast<uint64_t>(n),
                                          std::memory_order_relaxed);
          size_t remaining = static_cast<size_t>(n);
          while (remaining > 0) {
            OutChunk& front = conn->outq.front();
            size_t take = std::min(remaining, front.size());
            front.off += take;
            remaining -= take;
            if (front.size() == 0) conn->outq.pop_front();
          }
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        dead = true;  // EPIPE/ECONNRESET: peer is gone
        break;
      }
    }
    if (dead) {
      Close(conn);
      return false;
    }
    return true;
  }

  /// Loop-thread-only teardown; flips `closed` so in-flight callbacks
  /// drop their response instead of touching a dead fd.
  void Close(const std::shared_ptr<Connection>& conn) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed) return;
      conn->closed = true;
      CloseFd(conn->fd);
      conn->outq.clear();
    }
    stats_->connections_open.fetch_sub(1, std::memory_order_relaxed);
    connections_.erase(conn->fd);
  }

  /// Periodic maintenance: idle-timeout enforcement, and on shutdown the
  /// proactive close of connections with no work left.
  void Sweep(bool stopping) {
    std::vector<std::shared_ptr<Connection>> to_close;
    Clock::time_point now = Clock::now();
    for (auto& [fd, conn] : connections_) {
      bool idle;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        idle = !conn->in_flight && conn->outq.empty();
      }
      if (!idle) continue;
      if (conn->parser.complete()) continue;  // request pending dispatch
      if (stopping) {
        to_close.push_back(conn);
      } else if (!conn->error_sent && conn->request_started &&
                 conn->parser.mid_request() &&
                 options_->idle_timeout_seconds > 0 &&
                 std::chrono::duration<double>(now - conn->request_start)
                         .count() > options_->idle_timeout_seconds) {
        // Slowloris defense: the request has been trickling in longer than
        // the idle bound *in total* (per-byte activity refreshes
        // last_activity, never request_start). Answer 431 and close.
        conn->error_sent = true;
        stats_->slow_client_timeouts.fetch_add(1, std::memory_order_relaxed);
        QueueResponse(conn,
                      JsonError(431, "request incomplete after " +
                                         std::to_string(
                                             options_->idle_timeout_seconds) +
                                         "s"),
                      /*keep_alive=*/false);
      } else if (options_->idle_timeout_seconds > 0 &&
                 std::chrono::duration<double>(now - conn->last_activity)
                         .count() > options_->idle_timeout_seconds) {
        to_close.push_back(conn);
      }
    }
    for (const auto& conn : to_close) Close(conn);
  }

  HttpServer* const server_;
  const std::map<std::string, PrecisService*>* const services_;
  const HttpServer::Options* const options_;
  const ServerChaosConfig* const chaos_;
  const std::shared_ptr<ServerStats> stats_;
  const std::atomic<bool>* const stopping_;

  std::shared_ptr<Mailbox> mailbox_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  std::thread thread_;
};

}  // namespace server_internal

using server_internal::IoLoop;
using server_internal::ServerStats;

Result<std::unique_ptr<HttpServer>> HttpServer::Create(
    std::map<std::string, PrecisService*> services, Options options) {
  if (services.find("default") == services.end()) {
    return Status::InvalidArgument(
        "services must contain a 'default' profile");
  }
  for (const auto& [name, service] : services) {
    if (service == nullptr) {
      return Status::InvalidArgument("profile '" + name +
                                     "' has a null service");
    }
  }
  if (options.io_threads == 0) options.io_threads = 1;
  std::unique_ptr<HttpServer> server(
      new HttpServer(std::move(services), std::move(options)));

  std::string chaos_spec = server->options_.chaos_spec;
  if (chaos_spec.empty()) {
    if (const char* env = std::getenv("PRECIS_SERVER_CHAOS")) {
      chaos_spec = env;
    }
  }
  if (!chaos_spec.empty()) {
    auto chaos = ServerChaosConfig::Parse(chaos_spec);
    if (!chaos.ok()) return chaos.status();
    server->chaos_ = *chaos;
  }

  auto listen = ListenTcp(server->options_.bind_address,
                          server->options_.port);
  if (!listen.ok()) return listen.status();
  server->listen_fd_ = *listen;
  PRECIS_RETURN_NOT_OK(SetNonBlocking(server->listen_fd_));
  auto port = LocalPort(server->listen_fd_);
  if (!port.ok()) return port.status();
  server->port_ = *port;

  for (size_t i = 0; i < server->options_.io_threads; ++i) {
    server->loops_.push_back(std::make_unique<IoLoop>(
        server.get(), &server->services_, &server->options_, &server->chaos_,
        server->stats_, &server->stopping_));
  }
  for (auto& loop : server->loops_) loop->Start();
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

HttpServer::HttpServer(std::map<std::string, PrecisService*> services,
                       Options options)
    : services_(std::move(services)),
      options_(std::move(options)),
      stats_(std::make_shared<ServerStats>()) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::AcceptLoop() {
  pollfd pfds[2] = {{listen_fd_, POLLIN, 0},
                    {stop_pipe_.read_fd(), POLLIN, 0}};
  while (!stopping_.load(std::memory_order_relaxed)) {
    int rc = poll(pfds, 2, -1);
    if (rc < 0 && errno != EINTR) break;
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (rc <= 0 || (pfds[0].revents & POLLIN) == 0) continue;
    for (;;) {
      int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN (drained) or transient accept failure
      }
      uint64_t open = stats_->connections_open.load(std::memory_order_relaxed);
      if (open >= options_.max_connections) {
        // Over the cap: a canned 503 on the still-blocking socket (it
        // fits any socket buffer), then close — bounded fds, loud signal.
        stats_->connections_rejected.fetch_add(1, std::memory_order_relaxed);
        stats_->CountResponse(503);
        HttpResponse response;
        response.status = 503;
        response.SetHeader("Content-Type", "application/json");
        response.SetHeader("Retry-After", "1");
        response.body = "{\"error\":\"connection limit reached\"}\n";
        std::string bytes =
            SerializeHttpResponse(response, /*keep_alive=*/false);
        (void)WriteAll(fd, bytes.data(), bytes.size());
        CloseFd(fd);
        continue;
      }
      if (server_internal::ChaosFire(chaos_, chaos_.accept_error,
                                     /*stream=*/0,
                                     &stats_->chaos_accept_checks)) {
        // Injected accept-path failure: drop before adoption, exactly like
        // a peer that vanished between accept() and the first byte.
        stats_->chaos_accept_errors.fetch_add(1, std::memory_order_relaxed);
        CloseFd(fd);
        continue;
      }
      stats_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
      stats_->connections_open.fetch_add(1, std::memory_order_relaxed);
      size_t loop = next_loop_.fetch_add(1, std::memory_order_relaxed) %
                    loops_.size();
      loops_[loop]->Adopt(fd);
    }
  }
}

void HttpServer::BeginDrain() {
  draining_.store(true, std::memory_order_relaxed);
}

void HttpServer::Stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_relaxed);
  stop_pipe_.Notify();
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  for (auto& loop : loops_) loop->Notify();
  for (auto& loop : loops_) loop->Join();
  for (auto& loop : loops_) loop->SealMailbox();
}

HttpServer::Metrics HttpServer::metrics() const {
  Metrics m;
  m.connections_accepted =
      stats_->connections_accepted.load(std::memory_order_relaxed);
  m.connections_rejected =
      stats_->connections_rejected.load(std::memory_order_relaxed);
  m.connections_open =
      stats_->connections_open.load(std::memory_order_relaxed);
  m.requests_total = stats_->requests_total.load(std::memory_order_relaxed);
  m.parse_errors = stats_->parse_errors.load(std::memory_order_relaxed);
  m.responses_2xx = stats_->responses_2xx.load(std::memory_order_relaxed);
  m.responses_4xx = stats_->responses_4xx.load(std::memory_order_relaxed);
  m.responses_503 = stats_->responses_503.load(std::memory_order_relaxed);
  m.responses_504 = stats_->responses_504.load(std::memory_order_relaxed);
  m.responses_5xx = stats_->responses_5xx.load(std::memory_order_relaxed);
  m.bytes_read = stats_->bytes_read.load(std::memory_order_relaxed);
  m.bytes_written = stats_->bytes_written.load(std::memory_order_relaxed);
  m.slow_client_timeouts =
      stats_->slow_client_timeouts.load(std::memory_order_relaxed);
  m.chaos_accept_errors =
      stats_->chaos_accept_errors.load(std::memory_order_relaxed);
  m.chaos_read_errors =
      stats_->chaos_read_errors.load(std::memory_order_relaxed);
  m.chaos_write_errors =
      stats_->chaos_write_errors.load(std::memory_order_relaxed);
  m.chaos_short_writes =
      stats_->chaos_short_writes.load(std::memory_order_relaxed);
  return m;
}

Result<ServerChaosConfig> ServerChaosConfig::Parse(const std::string& spec) {
  ServerChaosConfig config;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string field = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (field.empty()) continue;
    size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("chaos spec field '" + field +
                                     "' is not key=value");
    }
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    errno = 0;
    char* end = nullptr;
    if (key == "seed") {
      unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("chaos seed '" + value +
                                       "' is not an unsigned integer");
      }
      config.seed = v;
      continue;
    }
    double p = std::strtod(value.c_str(), &end);
    if (errno != 0 || end == value.c_str() || *end != '\0') {
      return Status::InvalidArgument("chaos probability '" + value +
                                     "' is not a number");
    }
    p = std::max(0.0, std::min(1.0, p));
    if (key == "accept") {
      config.accept_error = p;
    } else if (key == "read") {
      config.read_error = p;
    } else if (key == "write") {
      config.write_error = p;
    } else if (key == "short") {
      config.short_write = p;
    } else {
      return Status::InvalidArgument(
          "unknown chaos key '" + key +
          "' (want seed, accept, read, write, short)");
    }
  }
  return config;
}

namespace {

void AppendCacheStats(std::ostringstream* os, const char* level,
                      const LruCacheStats& s) {
  *os << "\"" << level << "\":{\"hits\":" << s.hits
      << ",\"misses\":" << s.misses << ",\"evictions\":" << s.evictions
      << ",\"entries\":" << s.entries << ",\"bytes\":" << s.charge_bytes
      << "}";
}

}  // namespace

std::string HttpServer::MetricsJson() const {
  Metrics m = metrics();
  std::ostringstream os;
  os << "{\"server\":{"
     << "\"connections_accepted\":" << m.connections_accepted
     << ",\"connections_rejected\":" << m.connections_rejected
     << ",\"connections_open\":" << m.connections_open
     << ",\"requests_total\":" << m.requests_total
     << ",\"parse_errors\":" << m.parse_errors
     << ",\"responses_2xx\":" << m.responses_2xx
     << ",\"responses_4xx\":" << m.responses_4xx
     << ",\"responses_503\":" << m.responses_503
     << ",\"responses_504\":" << m.responses_504
     << ",\"responses_5xx\":" << m.responses_5xx
     << ",\"bytes_read\":" << m.bytes_read
     << ",\"bytes_written\":" << m.bytes_written
     << ",\"slow_client_timeouts\":" << m.slow_client_timeouts
     << ",\"draining\":" << (draining() ? "true" : "false")
     << ",\"chaos\":{\"accept_errors\":" << m.chaos_accept_errors
     << ",\"read_errors\":" << m.chaos_read_errors
     << ",\"write_errors\":" << m.chaos_write_errors
     << ",\"short_writes\":" << m.chaos_short_writes
     << "}},\"profiles\":{";
  bool first = true;
  for (const auto& [name, service] : services_) {
    if (!first) os << ",";
    first = false;
    PrecisService::Metrics sm = service->metrics();
    os << "\"" << JsonEscape(name) << "\":{"
       << "\"queries_served\":" << sm.queries_served
       << ",\"failures\":" << sm.failures
       << ",\"queries_shed\":" << sm.queries_shed
       << ",\"deadline_hits\":" << sm.deadline_hits
       << ",\"budget_truncations\":" << sm.budget_truncations
       << ",\"degraded_answers\":" << sm.degraded_answers
       << ",\"retries_total\":" << sm.retries_total
       << ",\"dropped_tuples_total\":" << sm.dropped_tuples_total
       << ",\"p50_latency_ms\":" << sm.p50_latency_seconds * 1e3
       << ",\"p99_latency_ms\":" << sm.p99_latency_seconds * 1e3
       << ",\"caches\":{";
    AppendCacheStats(&os, "token", sm.token_cache);
    os << ",";
    AppendCacheStats(&os, "schema", sm.schema_cache);
    os << ",";
    AppendCacheStats(&os, "answer", sm.answer_cache);
    os << ",";
    AppendCacheStats(&os, "body", sm.body_cache);
    os << "},\"symbols\":{\"count\":" << sm.symbol_table.symbols
       << ",\"bytes\":" << sm.symbol_table.bytes
       << "},\"arena\":{\"peak_bytes_max\":" << sm.arena_peak_bytes_max
       << ",\"peak_bytes_total\":" << sm.arena_peak_bytes_total << "}";
    if (!sm.shards.empty()) {
      // Sharded serving (DESIGN.md §15): scatter-gather counters per shard
      // plus the merge-time percentiles and the rebalanced-budget total.
      os << ",\"shards\":{\"count\":" << sm.shards.size()
         << ",\"merge_p50_ms\":" << sm.shard_merge_p50_seconds * 1e3
         << ",\"merge_p99_ms\":" << sm.shard_merge_p99_seconds * 1e3
         << ",\"rebalanced_budget_total\":"
         << sm.shard_rebalanced_budget_total
         // Fault-domain serving totals (DESIGN.md §17).
         << ",\"degraded_queries\":" << sm.shard_degraded_queries
         << ",\"shard_skips\":" << sm.shard_skips_total
         << ",\"probe_retries\":" << sm.shard_probe_retries_total
         << ",\"breaker_rejects\":" << sm.shard_breaker_rejects_total
         << ",\"hedged_subqueries\":" << sm.hedged_subqueries_total
         << ",\"hedge_wins\":" << sm.hedge_wins_total << ",\"per_shard\":[";
      for (size_t s = 0; s < sm.shards.size(); ++s) {
        if (s > 0) os << ",";
        const PrecisService::ShardMetricsEntry& shard = sm.shards[s];
        os << "{\"subqueries\":" << shard.subqueries
           << ",\"charges\":" << shard.charges
           << ",\"tuples\":" << shard.tuples
           << ",\"scratch_peak_bytes\":" << shard.scratch_peak_bytes
           << ",\"breaker\":{\"state\":\"" << shard.breaker_state
           << "\",\"opened\":" << shard.breaker_opened
           << ",\"rejected\":" << shard.breaker_rejected
           << ",\"half_open_probes\":" << shard.breaker_half_open_probes
           << ",\"failures\":" << shard.breaker_failures << "},";
        AppendCacheStats(&os, "partial_cache", shard.token_cache);
        os << "}";
      }
      os << "]}";
    }
    os << "}";
  }
  os << "}}\n";
  return os.str();
}

}  // namespace precis
