// A minimal blocking HTTP/1.1 client: one keep-alive connection, request
// in, response out. Exists for the load generator (bench/load_gen) and the
// server tests — it is intentionally not a general client (no TLS, no
// redirects, no chunked bodies), just the mirror image of what HttpServer
// emits.

#ifndef PRECIS_SERVER_HTTP_CLIENT_H_
#define PRECIS_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace precis {

/// \brief One parsed HTTP response.
struct HttpClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;
};

/// \brief A blocking keep-alive connection to one server.
///
/// Not thread-safe; each load-generator worker owns its own client. When
/// the server closes the connection (Connection: close, drain, or idle
/// timeout) the next request fails — callers reconnect with Connect().
class HttpClient {
 public:
  static Result<HttpClient> Connect(const std::string& address, uint16_t port);

  HttpClient() = default;
  ~HttpClient();
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  bool connected() const { return fd_ >= 0; }
  void Close();

  Result<HttpClientResponse> Get(const std::string& target);
  Result<HttpClientResponse> Post(const std::string& target,
                                  const std::string& body);

  /// Sends an arbitrary request (used by tests for malformed traffic and
  /// HEAD) and reads one response.
  Result<HttpClientResponse> Request(const std::string& method,
                                     const std::string& target,
                                     const std::string& body);

  /// Writes raw bytes without framing (test hook for pipelining and
  /// malformed streams), then reads one response per ReadResponse() call.
  Status SendRaw(const std::string& bytes);
  Result<HttpClientResponse> ReadResponse(bool head_only = false);

 private:
  explicit HttpClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // bytes read past the previous response
};

}  // namespace precis

#endif  // PRECIS_SERVER_HTTP_CLIENT_H_
