// A minimal JSON parser for HTTP request bodies.
//
// The repo already has a hand-rolled JSON *emitter* (precis/json_export);
// the network front end needs the other direction: POST /query carries a
// small JSON object of tokens and execution knobs. This is a strict
// recursive-descent parser of standard JSON (RFC 8259) with a depth cap —
// no third-party dependency, no streaming (request bodies are bounded by
// HttpServer's max_body_bytes long before they reach the parser).

#ifndef PRECIS_SERVER_JSON_LITE_H_
#define PRECIS_SERVER_JSON_LITE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace precis {

/// \brief One parsed JSON value (a tree).
///
/// Numbers keep both views: `number` is always set; `is_integer` marks
/// values that were written without fraction/exponent and fit an int64, so
/// knob parsing can reject "1.5 workers" style inputs precisely.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  bool is_integer = false;
  int64_t integer = 0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered (duplicate keys: last wins, like most parsers).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// \brief Parses exactly one JSON value spanning the whole input (trailing
/// non-whitespace is an error). InvalidArgument errors carry the byte
/// offset of the problem.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace precis

#endif  // PRECIS_SERVER_JSON_LITE_H_
