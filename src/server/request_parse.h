// Translates a POST /query JSON body into a ServiceRequest.
//
// The body is a flat JSON object carrying the query tokens plus the same
// execution knobs the shell and PrecisService expose (DESIGN.md §9/§14):
//
//   {
//     "tokens": ["Woody Allen", "Match Point"],   // required, non-empty
//     "min_path_weight": 0.5,      // degree constraint (Table 1 row 2)
//     "max_projections": 0,        // degree constraint (Table 1 row 1)
//     "tuples_per_relation": 10,   // cardinality constraint (Table 2)
//     "deadline_ms": 100,          // per-request wall-clock deadline
//     "budget": 0,                 // access budget (probes+fetches+scans)
//     "parallelism": 0,            // intra-query fan-out (DESIGN.md §11)
//     "strategy": "auto",          // auto | naiveq | roundrobin
//     "profile": "default"         // weight profile / tenant selector
//   }
//
// Every knob is optional except "tokens"; unknown keys are ignored for
// forward compatibility. Validation is strict about types and ranges so a
// bad request is a 400 with a precise message, never a mis-parsed query.

#ifndef PRECIS_SERVER_REQUEST_PARSE_H_
#define PRECIS_SERVER_REQUEST_PARSE_H_

#include <string>

#include "common/result.h"
#include "service/precis_service.h"

namespace precis {

/// \brief A parsed /query body: the service request plus the name of the
/// weight profile (empty = the server's default profile).
struct ParsedQueryRequest {
  ServiceRequest request;
  std::string profile;
};

/// \brief Bounds applied during parsing (against hostile inputs).
struct QueryRequestLimits {
  size_t max_tokens = 16;
  size_t max_token_bytes = 256;
};

/// \brief Parses and validates one /query body. InvalidArgument on any
/// malformed or out-of-range field (mapped to HTTP 400 by the server).
Result<ParsedQueryRequest> ParseQueryRequest(
    const std::string& body, QueryRequestLimits limits = QueryRequestLimits());

}  // namespace precis

#endif  // PRECIS_SERVER_REQUEST_PARSE_H_
