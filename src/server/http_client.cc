#include "server/http_client.h"

#include <errno.h>
#include <unistd.h>

#include <cctype>
#include <cstring>

#include "common/net_util.h"

namespace precis {

namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace

const std::string* HttpClientResponse::FindHeader(
    const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

Result<HttpClient> HttpClient::Connect(const std::string& address,
                                       uint16_t port) {
  auto fd = ConnectTcp(address, port);
  if (!fd.ok()) return fd.status();
  (void)SetTcpNoDelay(*fd);
  return HttpClient(*fd);
}

HttpClient::~HttpClient() { Close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void HttpClient::Close() {
  CloseFd(fd_);
  fd_ = -1;
  buffer_.clear();
}

Result<HttpClientResponse> HttpClient::Get(const std::string& target) {
  return Request("GET", target, "");
}

Result<HttpClientResponse> HttpClient::Post(const std::string& target,
                                            const std::string& body) {
  return Request("POST", target, body);
}

Result<HttpClientResponse> HttpClient::Request(const std::string& method,
                                               const std::string& target,
                                               const std::string& body) {
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: precis\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Type: application/json\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  PRECIS_RETURN_NOT_OK(SendRaw(request));
  return ReadResponse(method == "HEAD");
}

Status HttpClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  Status status = WriteAll(fd_, bytes.data(), bytes.size());
  if (!status.ok()) Close();
  return status;
}

Result<HttpClientResponse> HttpClient::ReadResponse(bool head_only) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  // Accumulate until the header block is complete.
  size_t header_end = std::string::npos;
  for (;;) {
    header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    char chunk[8192];
    ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return Status::Unavailable(n == 0 ? "connection closed by server"
                                      : "read failed: " +
                                            std::string(strerror(errno)));
  }

  HttpClientResponse response;
  size_t line_start = 0;
  size_t line_end = buffer_.find("\r\n");
  std::string status_line = buffer_.substr(0, line_end);
  if (status_line.compare(0, 5, "HTTP/") != 0) {
    Close();
    return Status::Internal("malformed status line: " + status_line);
  }
  size_t sp = status_line.find(' ');
  if (sp == std::string::npos || sp + 4 > status_line.size()) {
    Close();
    return Status::Internal("malformed status line: " + status_line);
  }
  response.status = std::atoi(status_line.c_str() + sp + 1);
  if (response.status < 100 || response.status > 599) {
    Close();
    return Status::Internal("implausible status in: " + status_line);
  }

  line_start = line_end + 2;
  while (line_start < header_end) {
    line_end = buffer_.find("\r\n", line_start);
    std::string line = buffer_.substr(line_start, line_end - line_start);
    line_start = line_end + 2;
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    response.headers.emplace_back(Trim(line.substr(0, colon)),
                                  Trim(line.substr(colon + 1)));
  }

  size_t body_start = header_end + 4;
  size_t body_size = 0;
  if (const std::string* cl = response.FindHeader("Content-Length")) {
    body_size = static_cast<size_t>(std::strtoull(cl->c_str(), nullptr, 10));
  }
  // HEAD responses advertise Content-Length but carry no body bytes.
  size_t body_on_wire = head_only ? 0 : body_size;
  while (buffer_.size() < body_start + body_on_wire) {
    char chunk[8192];
    ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return Status::Unavailable("connection closed mid-body");
  }
  response.body = buffer_.substr(body_start, body_on_wire);
  // Keep any pipelined surplus for the next ReadResponse().
  buffer_.erase(0, body_start + body_on_wire);

  if (const std::string* conn = response.FindHeader("Connection")) {
    if (EqualsIgnoreCase(*conn, "close")) Close();
  }
  return response;
}

}  // namespace precis
