// HTTP/1.1 message framing: an incremental request parser and a response
// serializer. No I/O here — HttpServer owns the sockets and feeds bytes in
// as they arrive, so one connection's requests can span any number of
// reads (the per-connection state machine of DESIGN.md §14).
//
// Deliberately small: methods GET/POST/HEAD, Content-Length bodies only
// (Transfer-Encoding is rejected with 501), HTTP/1.0 and 1.1, keep-alive
// per the version defaults and the Connection header. That is the whole
// surface the precis front end needs; anything else is a 4xx/5xx, never
// undefined behaviour.

#ifndef PRECIS_SERVER_HTTP_H_
#define PRECIS_SERVER_HTTP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace precis {

/// \brief One fully parsed HTTP request.
struct HttpRequest {
  std::string method;   // uppercase by spec; matched case-sensitively
  std::string target;   // origin-form, e.g. "/query"
  int version_minor = 1;  // HTTP/1.<version_minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this request (version default + the
  /// Connection header).
  bool keep_alive = true;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;
};

/// \brief Parser limits; defaults sized for precis query traffic.
struct HttpParserLimits {
  size_t max_header_bytes = 64 * 1024;
  size_t max_body_bytes = 1024 * 1024;
};

/// \brief Incremental HTTP/1.x request parser (one connection's stream).
///
/// Feed() consumes bytes; once complete() turns true, request() holds the
/// parsed message and any pipelined surplus stays buffered for the next
/// ResetForNext(). A malformed stream parks the parser in failed() with
/// the HTTP status code to answer with (400/411/413/431/501/505) — the
/// connection must be closed after sending it.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpParserLimits limits = HttpParserLimits())
      : limits_(limits) {}

  /// Appends bytes and advances the state machine.
  void Feed(const char* data, size_t size);

  bool complete() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }
  /// HTTP status to respond with when failed().
  int error_status() const { return error_status_; }
  const std::string& error_detail() const { return error_detail_; }

  /// Valid once complete().
  const HttpRequest& request() const { return request_; }

  /// Discards the parsed request, keeps buffered pipelined bytes, and
  /// immediately re-parses them (so complete() may be true again on
  /// return).
  void ResetForNext();

  /// True when no bytes of a next request have arrived (connection is
  /// idle between requests — safe to close on shutdown).
  bool buffer_empty() const { return buffer_.empty(); }

  /// True while a request is partially parsed: header bytes buffered but
  /// the blank line not yet seen, or headers done and body bytes still
  /// owed. This is the slowloris predicate — a connection can sit here
  /// forever at one byte per poll tick, so the server bounds the *total*
  /// time in this state rather than the gap between bytes.
  bool mid_request() const {
    return state_ == State::kBody ||
           (state_ == State::kHeaders && !buffer_.empty());
  }

 private:
  enum class State { kHeaders, kBody, kComplete, kError };

  void Advance();
  void ParseHeaderBlock(size_t block_end);
  void Fail(int status, std::string detail);

  HttpParserLimits limits_;
  State state_ = State::kHeaders;
  std::string buffer_;
  size_t body_expected_ = 0;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_detail_;
};

/// \brief One HTTP response to serialize.
///
/// The body comes in one of two forms: `body` (owned bytes, the default)
/// or `shared_body` (an immutable shared string — e.g. the engine's
/// memoized JSON render — that the server writes to the wire without
/// copying, DESIGN.md §16). When `shared_body` is set it wins and `body`
/// is ignored.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  std::shared_ptr<const std::string> shared_body;

  void SetHeader(const std::string& name, const std::string& value) {
    headers.emplace_back(name, value);
  }

  /// The effective body bytes, whichever form carries them.
  const std::string& body_ref() const {
    return shared_body != nullptr ? *shared_body : body;
  }
};

/// \brief Standard reason phrase ("OK", "Service Unavailable", ...).
const char* HttpReasonPhrase(int status);

/// \brief Serializes status line + headers only (through the trailing
/// CRLFCRLF). Content-Length, Connection and Server headers are emitted
/// automatically; the body travels separately (scatter-gather write path).
std::string SerializeHttpHeaders(const HttpResponse& response,
                                 bool keep_alive);

/// \brief Serializes status line + headers + body. Content-Length,
/// Connection and Server headers are emitted automatically; `head_only`
/// (HEAD requests) drops the body bytes but keeps its Content-Length.
/// Byte-for-byte SerializeHttpHeaders(...) + body_ref().
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive, bool head_only = false);

}  // namespace precis

#endif  // PRECIS_SERVER_HTTP_H_
