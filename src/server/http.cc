#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace precis {

namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string TrimOws(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

void HttpRequestParser::Feed(const char* data, size_t size) {
  if (state_ == State::kError) return;
  buffer_.append(data, size);
  Advance();
}

void HttpRequestParser::Fail(int status, std::string detail) {
  state_ = State::kError;
  error_status_ = status;
  error_detail_ = std::move(detail);
}

void HttpRequestParser::Advance() {
  if (state_ == State::kHeaders) {
    // The header block ends at the first empty line. Scan for CRLFCRLF and
    // also accept bare-LF framing (lenient like common servers).
    size_t crlf = buffer_.find("\r\n\r\n");
    size_t lf = buffer_.find("\n\n");
    size_t block_end;  // index one past the blank-line terminator
    if (crlf != std::string::npos &&
        (lf == std::string::npos || crlf < lf)) {
      block_end = crlf + 4;
    } else if (lf != std::string::npos) {
      block_end = lf + 2;
    } else {
      if (buffer_.size() > limits_.max_header_bytes) {
        Fail(431, "header block exceeds " +
                      std::to_string(limits_.max_header_bytes) + " bytes");
      }
      return;  // need more bytes
    }
    if (block_end > limits_.max_header_bytes) {
      Fail(431, "header block exceeds " +
                    std::to_string(limits_.max_header_bytes) + " bytes");
      return;
    }
    ParseHeaderBlock(block_end);
    if (state_ == State::kError) return;
    buffer_.erase(0, block_end);
    state_ = State::kBody;
  }
  if (state_ == State::kBody) {
    if (buffer_.size() < body_expected_) return;  // need more bytes
    request_.body = buffer_.substr(0, body_expected_);
    buffer_.erase(0, body_expected_);
    state_ = State::kComplete;
  }
}

void HttpRequestParser::ParseHeaderBlock(size_t block_end) {
  // Split the block into lines, tolerating both CRLF and LF endings.
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < block_end) {
    size_t eol = buffer_.find('\n', pos);
    if (eol == std::string::npos || eol >= block_end) break;
    size_t len = eol - pos;
    if (len > 0 && buffer_[pos + len - 1] == '\r') --len;
    lines.push_back(buffer_.substr(pos, len));
    pos = eol + 1;
  }
  if (lines.empty() || lines[0].empty()) {
    Fail(400, "missing request line");
    return;
  }

  // Request line: METHOD SP TARGET SP HTTP/1.x
  const std::string& line = lines[0];
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    Fail(400, "malformed request line");
    return;
  }
  request_.method = line.substr(0, sp1);
  request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else {
    Fail(505, "unsupported protocol version '" + version + "'");
    return;
  }
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    Fail(400, "malformed method or target");
    return;
  }

  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) break;
    size_t colon = lines[i].find(':');
    if (colon == std::string::npos || colon == 0) {
      Fail(400, "malformed header line");
      return;
    }
    std::string name = lines[i].substr(0, colon);
    // Field names must not contain whitespace (request smuggling vector).
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      Fail(400, "whitespace in header field name");
      return;
    }
    request_.headers.emplace_back(std::move(name),
                                  TrimOws(lines[i].substr(colon + 1)));
  }

  // Framing. Chunked bodies are out of scope — refuse loudly, never guess.
  if (request_.FindHeader("Transfer-Encoding") != nullptr) {
    Fail(501, "Transfer-Encoding not supported");
    return;
  }
  body_expected_ = 0;
  if (const std::string* cl = request_.FindHeader("Content-Length")) {
    const std::string trimmed = TrimOws(*cl);
    if (trimmed.empty() ||
        trimmed.find_first_not_of("0123456789") != std::string::npos) {
      Fail(400, "malformed Content-Length");
      return;
    }
    errno = 0;
    unsigned long long v = std::strtoull(trimmed.c_str(), nullptr, 10);
    if (errno != 0 || v > limits_.max_body_bytes) {
      Fail(413, "body exceeds " + std::to_string(limits_.max_body_bytes) +
                    " bytes");
      return;
    }
    body_expected_ = static_cast<size_t>(v);
  } else if (request_.method == "POST" || request_.method == "PUT") {
    Fail(411, "Content-Length required");
    return;
  }

  // Keep-alive: HTTP/1.1 defaults to persistent, 1.0 to close; an explicit
  // Connection header overrides either way.
  request_.keep_alive = request_.version_minor >= 1;
  if (const std::string* conn = request_.FindHeader("Connection")) {
    if (EqualsIgnoreCase(TrimOws(*conn), "close")) {
      request_.keep_alive = false;
    } else if (EqualsIgnoreCase(TrimOws(*conn), "keep-alive")) {
      request_.keep_alive = true;
    }
  }
}

void HttpRequestParser::ResetForNext() {
  if (state_ != State::kComplete) return;
  request_ = HttpRequest();
  body_expected_ = 0;
  state_ = State::kHeaders;
  // Pipelined bytes may already hold the next full request.
  if (!buffer_.empty()) Advance();
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeHttpHeaders(const HttpResponse& response,
                                 bool keep_alive) {
  std::string out;
  out.reserve(256);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpReasonPhrase(response.status);
  out += "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Server: precis\r\nContent-Length: ";
  out += std::to_string(response.body_ref().size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  return out;
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive, bool head_only) {
  std::string out = SerializeHttpHeaders(response, keep_alive);
  if (!head_only) out += response.body_ref();
  return out;
}

}  // namespace precis
