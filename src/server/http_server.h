// HttpServer: the network front end over PrecisService (DESIGN.md §14).
//
// A blocking accept loop hands sockets to a small set of I/O threads, each
// running a poll()-driven loop over per-connection state machines
// (read -> dispatch -> write, keep-alive). POST /query bodies are parsed
// into ServiceRequests (server/request_parse.h) and executed on the
// PrecisService worker pool via SubmitAsync; the worker's completion
// callback serializes the answer (the exact bytes of AnswerToJson — the
// wire answer is byte-identical to the in-process one) into the
// connection's output buffer and wakes its poll loop through a self-pipe.
//
// Backpressure surfaces as HTTP status codes rather than queueing:
//   Status::Overloaded (admission-queue shedding)  -> 503
//   StopReason::kDeadlineExceeded (partial answer) -> 504 + partial body
//   parse/validation failures                      -> 400
//   unknown path / profile                         -> 404
// GET /metrics exposes connection/request counters plus every profile's
// PrecisService metrics (caches, symbols, arenas); GET /healthz is the
// liveness probe.

#ifndef PRECIS_SERVER_HTTP_SERVER_H_
#define PRECIS_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/net_util.h"
#include "common/result.h"
#include "server/http.h"
#include "service/precis_service.h"

namespace precis {

namespace server_internal {
class IoLoop;
struct ServerStats;
}  // namespace server_internal

/// \brief Seeded socket-level chaos (DESIGN.md §17): deterministic
/// error/short-write injection at the accept/read/write boundaries, for
/// drilling the server's connection teardown and partial-write resume
/// paths. Decisions are a pure function of (seed, stream, check index) —
/// the same FaultMix stream discipline as FaultInjector — so a chaos run
/// replays exactly under the same seed and arrival order.
struct ServerChaosConfig {
  uint64_t seed = 0;
  /// Probability an accepted connection is dropped before adoption.
  double accept_error = 0.0;
  /// Probability a readable connection is reset instead of read.
  double read_error = 0.0;
  /// Probability a flush attempt resets the connection instead.
  double write_error = 0.0;
  /// Probability a flush writes only a small prefix (short write),
  /// exercising the writev resume path.
  double short_write = 0.0;

  bool enabled() const {
    return accept_error > 0.0 || read_error > 0.0 || write_error > 0.0 ||
           short_write > 0.0;
  }

  /// Parses "seed=7,accept=0.01,read=0.02,write=0.02,short=0.25" (any
  /// subset of keys, comma-separated). Probabilities are clamped to
  /// [0, 1]; unknown keys are an error. Empty spec = all off.
  static Result<ServerChaosConfig> Parse(const std::string& spec);
};

class HttpServer {
 public:
  struct Options {
    /// Dotted-quad bind address; loopback by default (the load balancer /
    /// reverse proxy story is out of scope).
    std::string bind_address = "127.0.0.1";
    /// 0 = ephemeral; read the real port back with port().
    uint16_t port = 0;
    /// Poll loops; each owns a disjoint set of connections. Clamped >= 1.
    size_t io_threads = 2;
    /// Open-connection cap; excess connections get an immediate 503+close
    /// (never unbounded fd growth).
    size_t max_connections = 1024;
    /// Header/body size caps (413/431 beyond them).
    HttpParserLimits parser_limits;
    /// Connections idle (no request in flight, nothing buffered) longer
    /// than this are closed. The same bound caps how long a *partially
    /// received* request may take in total (measured from its first byte,
    /// so a slowloris client trickling one byte per tick cannot reset it);
    /// exceeding it mid-request answers 431 and closes. 0 disables both.
    double idle_timeout_seconds = 60.0;
    /// Stop() waits this long for in-flight responses to flush before
    /// force-closing.
    double drain_timeout_seconds = 5.0;
    /// Socket-level chaos spec (ServerChaosConfig::Parse format). When
    /// empty, the PRECIS_SERVER_CHAOS environment variable is consulted
    /// instead; a malformed spec fails Create.
    std::string chaos_spec;
  };

  /// Connection/request counters (snapshot; all monotonic except
  /// connections_open).
  struct Metrics {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;  // over max_connections
    uint64_t connections_open = 0;
    uint64_t requests_total = 0;
    uint64_t parse_errors = 0;
    uint64_t responses_2xx = 0;
    uint64_t responses_4xx = 0;
    uint64_t responses_503 = 0;  // shed (admission backpressure)
    uint64_t responses_504 = 0;  // deadline-exceeded partial answers
    uint64_t responses_5xx = 0;  // other server-side failures
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    /// Mid-request connections closed with 431 for exceeding the
    /// request-completion bound (slowloris defense).
    uint64_t slow_client_timeouts = 0;
    /// Injected socket chaos (ServerChaosConfig), by boundary.
    uint64_t chaos_accept_errors = 0;
    uint64_t chaos_read_errors = 0;
    uint64_t chaos_write_errors = 0;
    uint64_t chaos_short_writes = 0;
  };

  /// `services` maps weight-profile names to the PrecisService serving
  /// that profile (paper §3.1: per-user-group weight sets; also the
  /// multi-tenant routing hook). Must contain "default", the profile used
  /// when a request names none. Services are not owned and must outlive
  /// the server; each may wrap a differently-weighted engine. The
  /// listening socket is bound and the threads started before Create
  /// returns.
  static Result<std::unique_ptr<HttpServer>> Create(
      std::map<std::string, PrecisService*> services, Options options);

  /// Graceful Stop() (idempotent), then join.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolves Options::port == 0).
  uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, answer in-flight requests, flush,
  /// close. Blocks up to drain_timeout_seconds past the point where only
  /// in-flight work remains. Idempotent. The PrecisServices must be shut
  /// down *after* this returns (in-flight queries still need workers).
  void Stop();

  /// Enters drain mode without stopping: the server keeps serving, but
  /// /healthz flips to 503 "draining" with Connection: close so load
  /// balancers pull the instance out of rotation while in-flight and
  /// straggler requests finish. Idempotent; Stop() is the actual
  /// shutdown. Callers (precis_serve) poll metrics().connections_open to
  /// log drain progress.
  void BeginDrain();
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  Metrics metrics() const;

  /// The /metrics response body (exposed for tools/tests).
  std::string MetricsJson() const;

 private:
  HttpServer(std::map<std::string, PrecisService*> services, Options options);

  void AcceptLoop();

  std::map<std::string, PrecisService*> services_;
  Options options_;
  /// Parsed from Options::chaos_spec / PRECIS_SERVER_CHAOS at Create;
  /// immutable afterwards (the check counters live in ServerStats).
  ServerChaosConfig chaos_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::shared_ptr<server_internal::ServerStats> stats_;
  std::vector<std::unique_ptr<server_internal::IoLoop>> loops_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  WakeupPipe stop_pipe_;
  std::thread accept_thread_;
  std::atomic<size_t> next_loop_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace precis

#endif  // PRECIS_SERVER_HTTP_SERVER_H_
