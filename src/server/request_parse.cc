#include "server/request_parse.h"

#include "server/json_lite.h"

namespace precis {

namespace {

/// A non-negative number field; `out` unchanged when absent.
Status ReadNonNegative(const JsonValue& body, const char* key, double* out) {
  const JsonValue* v = body.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number() || v->number < 0) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a non-negative number");
  }
  *out = v->number;
  return Status::OK();
}

/// A non-negative integer field; `out` unchanged when absent.
Status ReadCount(const JsonValue& body, const char* key, uint64_t* out) {
  const JsonValue* v = body.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number() || !v->is_integer || v->integer < 0) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a non-negative integer");
  }
  *out = static_cast<uint64_t>(v->integer);
  return Status::OK();
}

}  // namespace

Result<ParsedQueryRequest> ParseQueryRequest(const std::string& body,
                                             QueryRequestLimits limits) {
  auto parsed = ParseJson(body);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }

  ParsedQueryRequest out;

  const JsonValue* tokens = root.Find("tokens");
  if (tokens == nullptr || !tokens->is_array() || tokens->array.empty()) {
    return Status::InvalidArgument(
        "'tokens' must be a non-empty array of strings");
  }
  if (tokens->array.size() > limits.max_tokens) {
    return Status::InvalidArgument("at most " +
                                   std::to_string(limits.max_tokens) +
                                   " tokens per query");
  }
  for (const JsonValue& token : tokens->array) {
    if (!token.is_string() || token.string.empty()) {
      return Status::InvalidArgument(
          "'tokens' must be a non-empty array of strings");
    }
    if (token.string.size() > limits.max_token_bytes) {
      return Status::InvalidArgument("token exceeds " +
                                     std::to_string(limits.max_token_bytes) +
                                     " bytes");
    }
    out.request.query.tokens.push_back(token.string);
  }

  PRECIS_RETURN_NOT_OK(
      ReadNonNegative(root, "min_path_weight", &out.request.min_path_weight));

  uint64_t max_projections = 0;
  PRECIS_RETURN_NOT_OK(ReadCount(root, "max_projections", &max_projections));
  out.request.max_projections = static_cast<size_t>(max_projections);

  uint64_t tuples = 0;
  PRECIS_RETURN_NOT_OK(ReadCount(root, "tuples_per_relation", &tuples));
  out.request.tuples_per_relation = static_cast<size_t>(tuples);

  double deadline_ms = 0.0;
  PRECIS_RETURN_NOT_OK(ReadNonNegative(root, "deadline_ms", &deadline_ms));
  out.request.deadline_seconds = deadline_ms / 1e3;

  PRECIS_RETURN_NOT_OK(ReadCount(root, "budget", &out.request.access_budget));

  uint64_t parallelism = 0;
  PRECIS_RETURN_NOT_OK(ReadCount(root, "parallelism", &parallelism));
  if (parallelism > 64) {
    return Status::InvalidArgument("'parallelism' must be <= 64");
  }
  // 0 keeps the DbGenOptions default (1, sequential) so the service-wide
  // dbgen_parallelism default still applies to requests that don't ask.
  if (parallelism >= 1) {
    out.request.options.parallelism = static_cast<size_t>(parallelism);
  }

  if (const JsonValue* strategy = root.Find("strategy")) {
    if (!strategy->is_string()) {
      return Status::InvalidArgument("'strategy' must be a string");
    }
    if (strategy->string == "auto") {
      out.request.options.strategy = SubsetStrategy::kAuto;
    } else if (strategy->string == "naiveq") {
      out.request.options.strategy = SubsetStrategy::kNaiveQ;
    } else if (strategy->string == "roundrobin") {
      out.request.options.strategy = SubsetStrategy::kRoundRobin;
    } else {
      return Status::InvalidArgument("unknown strategy '" + strategy->string +
                                     "' (auto | naiveq | roundrobin)");
    }
  }

  if (const JsonValue* profile = root.Find("profile")) {
    if (!profile->is_string()) {
      return Status::InvalidArgument("'profile' must be a string");
    }
    out.profile = profile->string;
  }

  return out;
}

}  // namespace precis
