// DISCOVER/DBXplorer-style keyword search over the relational database —
// the related-work comparator of the paper's §2.
//
// "Based on this graph, the interpretation for a given set of database
//  tokens is a query that corresponds to a sub-graph connecting their
//  corresponding nodes. An answer to a keyword search is a set of ranked
//  tuples based on some criterion (the number of joins)."
//
// Unlike a précis, the result is a set of *flattened* joined tuple trees:
// no surrounding information, no sub-database, no constraints. The
// comparison benches and the keyword_search_comparison example use this
// module to contrast the two paradigms.
//
// Scope notes relative to the original systems: candidate networks are
// enumerated as trees over the schema graph (join edges taken as undirected
// adjacency, as DISCOVER does), each keyword is covered by exactly one
// tuple-set node, and enumeration/execution are capped by explicit limits
// rather than by DISCOVER's algebraic plan sharing.

#ifndef PRECIS_BASELINE_KEYWORD_SEARCH_H_
#define PRECIS_BASELINE_KEYWORD_SEARCH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/schema_graph.h"
#include "storage/database.h"
#include "text/inverted_index.h"

namespace precis {

/// \brief One answer: a tree of joined tuples, one per network node, that
/// together cover all query keywords.
struct JoinedTupleTree {
  /// (relation name, tuple) per network node, root first.
  std::vector<std::pair<std::string, Tuple>> tuples;
  /// Number of joins in the network (the ranking criterion: fewer is
  /// better, as in DBXplorer/DISCOVER).
  size_t num_joins = 0;

  std::string ToString() const;
};

/// \brief Knobs bounding the search.
struct KeywordSearchOptions {
  /// Maximum relations per candidate network (DISCOVER's T).
  size_t max_network_size = 4;
  /// Keep at most this many answers, best-ranked first.
  size_t top_k = 20;
  /// Stop enumerating candidate networks beyond this many.
  size_t max_networks = 256;
  /// Stop execution after this many raw answers (pre-ranking).
  size_t max_results = 4096;
};

/// \brief Keyword-search engine over one database + schema graph.
class KeywordSearchBaseline {
 public:
  /// Builds the engine (with its own inverted index) over `db` and `graph`,
  /// which must outlive it.
  static Result<KeywordSearchBaseline> Create(const Database* db,
                                              const SchemaGraph* graph);

  /// Answers a keyword query: ranked joined tuple trees covering all
  /// keywords. Keywords that match nothing yield an empty answer set.
  Result<std::vector<JoinedTupleTree>> Search(
      const std::vector<std::string>& keywords,
      const KeywordSearchOptions& options = KeywordSearchOptions()) const;

  /// Number of candidate networks enumerated by the last Search call.
  size_t last_num_networks() const { return last_num_networks_; }

 private:
  KeywordSearchBaseline(const Database* db, const SchemaGraph* graph,
                        InvertedIndex index);

  struct NetNode {
    RelationNodeId relation;
    int parent;                 // -1 for root
    const JoinEdge* edge;       // edge connecting to parent (null for root)
    bool edge_forward;          // true: parent --edge--> child
    int keyword;                // covered keyword index, or -1 (free node)
  };
  using Network = std::vector<NetNode>;

  /// Per-keyword tuple sets: relation -> matching tids.
  struct TupleSet {
    RelationNodeId relation;
    std::vector<Tid> tids;
  };

  Result<std::vector<Network>> EnumerateNetworks(
      const std::vector<std::vector<TupleSet>>& tuple_sets,
      const KeywordSearchOptions& options) const;

  Status ExecuteNetwork(const Network& network,
                        const std::vector<std::vector<TupleSet>>& tuple_sets,
                        const KeywordSearchOptions& options,
                        std::vector<JoinedTupleTree>* results) const;

  const Database* db_;
  const SchemaGraph* graph_;
  InvertedIndex index_;
  /// Undirected adjacency derived from the join edges.
  struct Adjacency {
    RelationNodeId neighbor;
    const JoinEdge* edge;
    bool forward;
  };
  std::vector<std::vector<Adjacency>> adjacency_;
  mutable size_t last_num_networks_ = 0;
};

}  // namespace precis

#endif  // PRECIS_BASELINE_KEYWORD_SEARCH_H_
