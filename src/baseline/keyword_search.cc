#include "baseline/keyword_search.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>
#include <unordered_set>

namespace precis {

std::string JoinedTupleTree::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0) os << " |><| ";
    os << tuples[i].first << "(";
    for (size_t j = 0; j < tuples[i].second.size(); ++j) {
      if (j > 0) os << ", ";
      os << tuples[i].second[j].ToString();
    }
    os << ")";
  }
  return os.str();
}

KeywordSearchBaseline::KeywordSearchBaseline(const Database* db,
                                             const SchemaGraph* graph,
                                             InvertedIndex index)
    : db_(db), graph_(graph), index_(std::move(index)) {
  adjacency_.resize(graph_->num_relations());
  for (const JoinEdge& e : graph_->join_edges()) {
    adjacency_[e.from].push_back(Adjacency{e.to, &e, true});
    adjacency_[e.to].push_back(Adjacency{e.from, &e, false});
  }
}

Result<KeywordSearchBaseline> KeywordSearchBaseline::Create(
    const Database* db, const SchemaGraph* graph) {
  if (db == nullptr || graph == nullptr) {
    return Status::InvalidArgument("database and graph must be non-null");
  }
  auto index = InvertedIndex::Build(*db);
  if (!index.ok()) return index.status();
  return KeywordSearchBaseline(db, graph, std::move(*index));
}

Result<std::vector<KeywordSearchBaseline::Network>>
KeywordSearchBaseline::EnumerateNetworks(
    const std::vector<std::vector<TupleSet>>& tuple_sets,
    const KeywordSearchOptions& options) const {
  std::vector<Network> complete;
  std::vector<std::pair<Network, uint32_t>> frontier;  // (tree, covered mask)
  const uint32_t all_mask =
      tuple_sets.empty() ? 0u
                         : ((1u << tuple_sets.size()) - 1u);

  // Roots: one per tuple set of keyword 0.
  if (tuple_sets.empty()) return complete;
  for (const TupleSet& ts : tuple_sets[0]) {
    Network net = {NetNode{ts.relation, -1, nullptr, false, 0}};
    if (all_mask == 1u) {
      complete.push_back(net);
    } else {
      frontier.emplace_back(std::move(net), 1u);
    }
  }

  // Breadth-first tree expansion, smaller networks first (so that the
  // enumeration cap keeps the best-ranked shapes).
  while (!frontier.empty() && complete.size() < options.max_networks) {
    std::vector<std::pair<Network, uint32_t>> next;
    for (const auto& [net, mask] : frontier) {
      if (net.size() >= options.max_network_size) continue;
      for (int node_idx = 0; node_idx < static_cast<int>(net.size());
           ++node_idx) {
        for (const Adjacency& adj : adjacency_[net[node_idx].relation]) {
          // Free (connector) nodes use each relation at most once; tuple-set
          // nodes may revisit a relation (two keywords can match different
          // tuples of the same relation, joined through a connector — the
          // MOVIE - DIRECTOR - MOVIE shape).
          bool already = false;
          for (const NetNode& n : net) {
            if (n.relation == adj.neighbor) {
              already = true;
              break;
            }
          }

          // Option 1: attach as a tuple-set node for an uncovered keyword.
          for (size_t k = 1; k < tuple_sets.size(); ++k) {
            if ((mask >> k) & 1u) continue;
            for (const TupleSet& ts : tuple_sets[k]) {
              if (ts.relation != adj.neighbor) continue;
              Network extended = net;
              extended.push_back(NetNode{adj.neighbor, node_idx, adj.edge,
                                         adj.forward, static_cast<int>(k)});
              uint32_t new_mask = mask | (1u << k);
              if (new_mask == all_mask) {
                complete.push_back(std::move(extended));
                if (complete.size() >= options.max_networks) {
                  return complete;
                }
              } else {
                next.emplace_back(std::move(extended), new_mask);
              }
            }
          }
          // Option 2: attach as a free (connector) node.
          if (!already && net.size() + 1 < options.max_network_size) {
            Network extended = net;
            extended.push_back(
                NetNode{adj.neighbor, node_idx, adj.edge, adj.forward, -1});
            next.emplace_back(std::move(extended), mask);
          }
        }
      }
    }
    frontier = std::move(next);
    // Bound the frontier so pathological graphs cannot blow up memory.
    if (frontier.size() > 4 * options.max_networks) {
      frontier.resize(4 * options.max_networks);
    }
  }
  return complete;
}

Status KeywordSearchBaseline::ExecuteNetwork(
    const Network& network,
    const std::vector<std::vector<TupleSet>>& tuple_sets,
    const KeywordSearchOptions& options,
    std::vector<JoinedTupleTree>* results) const {
  // Resolve relations and per-node keyword tid filters.
  std::vector<const Relation*> relations(network.size());
  std::vector<std::unordered_set<Tid>> filters(network.size());
  for (size_t i = 0; i < network.size(); ++i) {
    auto rel = db_->GetRelation(graph_->relation_name(network[i].relation));
    if (!rel.ok()) return rel.status();
    relations[i] = *rel;
    if (network[i].keyword >= 0) {
      for (const TupleSet& ts : tuple_sets[network[i].keyword]) {
        if (ts.relation == network[i].relation) {
          filters[i].insert(ts.tids.begin(), ts.tids.end());
        }
      }
    }
  }

  // Children of each node, in index order (parents precede children by
  // construction).
  std::vector<std::vector<size_t>> children(network.size());
  for (size_t i = 1; i < network.size(); ++i) {
    children[network[i].parent].push_back(i);
  }

  // Depth-first assignment of tuples to nodes.
  std::vector<Tid> assignment(network.size());
  std::vector<Tuple> tuples(network.size());

  // Recursive lambda over node index in BFS order (0..n-1); because parents
  // precede children, filling nodes in index order keeps the parent bound
  // before each child is probed.
  std::function<Status(size_t)> fill = [&](size_t i) -> Status {
    if (results->size() >= options.max_results) return Status::OK();
    if (i == network.size()) {
      JoinedTupleTree tree;
      tree.num_joins = network.size() - 1;
      for (size_t n = 0; n < network.size(); ++n) {
        tree.tuples.emplace_back(
            graph_->relation_name(network[n].relation), tuples[n]);
      }
      results->push_back(std::move(tree));
      return Status::OK();
    }

    if (network[i].parent < 0) {
      // Root: iterate its keyword tuple set (roots are always keyword
      // nodes), in tid order for deterministic output.
      std::vector<Tid> root_tids(filters[i].begin(), filters[i].end());
      std::sort(root_tids.begin(), root_tids.end());
      for (Tid tid : root_tids) {
        auto t = relations[i]->Get(tid);
        if (!t.ok()) return t.status();
        assignment[i] = tid;
        tuples[i] = **t;
        PRECIS_RETURN_NOT_OK(fill(i + 1));
        if (results->size() >= options.max_results) return Status::OK();
      }
      return Status::OK();
    }

    // Probe the child relation with the parent's join value.
    const NetNode& node = network[i];
    size_t parent = static_cast<size_t>(node.parent);
    const std::string& parent_attr =
        node.edge_forward ? node.edge->from_attribute
                          : node.edge->to_attribute;
    const std::string& child_attr = node.edge_forward
                                        ? node.edge->to_attribute
                                        : node.edge->from_attribute;
    auto parent_idx = graph_->relation_schema(network[parent].relation)
                          .AttributeIndex(parent_attr);
    if (!parent_idx.ok()) return parent_idx.status();
    const Value& key = tuples[parent][*parent_idx];
    if (key.is_null()) return Status::OK();
    auto tids = relations[i]->LookupEquals(child_attr, key);
    if (!tids.ok()) return tids.status();
    for (Tid tid : *tids) {
      if (!filters[i].empty() && filters[i].count(tid) == 0) continue;
      auto t = relations[i]->Get(tid);
      if (!t.ok()) return t.status();
      assignment[i] = tid;
      tuples[i] = **t;
      PRECIS_RETURN_NOT_OK(fill(i + 1));
      if (results->size() >= options.max_results) return Status::OK();
    }
    return Status::OK();
  };

  return fill(0);
}

Result<std::vector<JoinedTupleTree>> KeywordSearchBaseline::Search(
    const std::vector<std::string>& keywords,
    const KeywordSearchOptions& options) const {
  last_num_networks_ = 0;
  std::vector<JoinedTupleTree> results;
  if (keywords.empty()) return results;

  // Tuple sets per keyword.
  std::vector<std::vector<TupleSet>> tuple_sets(keywords.size());
  for (size_t k = 0; k < keywords.size(); ++k) {
    // Bind the shared result before iterating: range-for over
    // `*index_.Lookup(...)` would destroy the temporary shared_ptr after
    // initializing the range and leave the loop reading freed memory.
    OccurrenceList occurrences = index_.Lookup(keywords[k]);
    for (const TokenOccurrence& occ : *occurrences) {
      auto rel = graph_->RelationId(occ.relation);
      if (!rel.ok()) return rel.status();
      // Merge occurrences of the same relation (different attributes).
      bool merged = false;
      for (TupleSet& ts : tuple_sets[k]) {
        if (ts.relation == *rel) {
          for (Tid tid : occ.tids) {
            if (std::find(ts.tids.begin(), ts.tids.end(), tid) ==
                ts.tids.end()) {
              ts.tids.push_back(tid);
            }
          }
          merged = true;
          break;
        }
      }
      if (!merged) tuple_sets[k].push_back(TupleSet{*rel, occ.tids});
    }
    if (tuple_sets[k].empty()) return results;  // keyword matches nothing
  }

  auto networks = EnumerateNetworks(tuple_sets, options);
  if (!networks.ok()) return networks.status();
  last_num_networks_ = networks->size();

  for (const Network& net : *networks) {
    PRECIS_RETURN_NOT_OK(ExecuteNetwork(net, tuple_sets, options, &results));
    if (results.size() >= options.max_results) break;
  }

  // Rank: fewer joins first; stable within a size class (execution order).
  std::stable_sort(results.begin(), results.end(),
                   [](const JoinedTupleTree& a, const JoinedTupleTree& b) {
                     return a.num_joins < b.num_joins;
                   });
  if (results.size() > options.top_k) results.resize(options.top_k);
  return results;
}

}  // namespace precis
