#include "common/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace precis {

// splitmix64 finalizer: a cheap, high-quality 64-bit mixer. The fault
// decision for (seed, site, check index) is a pure function of the mixed
// triple, which is what makes same-seed reruns byte-identical.
uint64_t FaultMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

uint64_t Mix(uint64_t x) { return FaultMix(x); }

// Maps the mixed hash to [0, 1) with 53 bits of precision.
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultSiteToString(FaultSite site) {
  switch (site) {
    case FaultSite::kIndexProbe:
      return "index_probe";
    case FaultSite::kTupleFetch:
      return "tuple_fetch";
    case FaultSite::kJoinValueLookup:
      return "join_value_lookup";
    case FaultSite::kRelationScan:
      return "relation_scan";
    case FaultSite::kTranslatorCatalog:
      return "translator_catalog";
    case FaultSite::kShardSubquery:
      return "shard_subquery";
    case FaultSite::kShardTimeout:
      return "shard_timeout";
  }
  return "unknown";
}

Result<FaultSite> ParseFaultSite(const std::string& name) {
  if (name == "index_probe" || name == "probe") return FaultSite::kIndexProbe;
  if (name == "tuple_fetch" || name == "fetch") return FaultSite::kTupleFetch;
  if (name == "join_value_lookup" || name == "join") {
    return FaultSite::kJoinValueLookup;
  }
  if (name == "relation_scan" || name == "scan") {
    return FaultSite::kRelationScan;
  }
  if (name == "translator_catalog" || name == "catalog") {
    return FaultSite::kTranslatorCatalog;
  }
  if (name == "shard_subquery" || name == "shard") {
    return FaultSite::kShardSubquery;
  }
  if (name == "shard_timeout" || name == "stall") {
    return FaultSite::kShardTimeout;
  }
  return Status::InvalidArgument(
      "unknown fault site '" + name +
      "' (expected probe|fetch|join|scan|catalog|shard|stall)");
}

FaultSchedule FaultSchedule::Probability(double p, FaultKind kind) {
  FaultSchedule s;
  s.mode = FaultMode::kProbability;
  s.kind = kind;
  s.probability = std::clamp(p, 0.0, 1.0);
  return s;
}

FaultSchedule FaultSchedule::EveryNth(uint64_t n, FaultKind kind) {
  FaultSchedule s;
  s.mode = FaultMode::kEveryNth;
  s.kind = kind;
  s.every_nth = n == 0 ? 1 : n;
  return s;
}

FaultSchedule FaultSchedule::Steps(std::vector<uint64_t> steps,
                                   FaultKind kind) {
  FaultSchedule s;
  s.mode = FaultMode::kSteps;
  s.kind = kind;
  std::sort(steps.begin(), steps.end());
  s.steps = std::move(steps);
  return s;
}

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {}

void FaultInjector::SetSchedule(FaultSite site, FaultSchedule schedule) {
  SiteState& state = sites_[static_cast<size_t>(site)];
  state.schedule = std::move(schedule);
  state.tripped.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(state.domains_mu);
    state.domains.clear();
  }
  RecomputeArmedMask();
}

void FaultInjector::SetAll(FaultSchedule schedule) {
  // Storage/translator sites only; the shard fault-domain sites
  // (kShardSubquery, kShardTimeout) stay opt-in via SetSchedule so SetAll
  // keeps its "storage chaos" contract (sharded == single-engine bytes).
  for (size_t i = 0; i <= static_cast<size_t>(FaultSite::kTranslatorCatalog);
       ++i) {
    SiteState& state = sites_[i];
    state.schedule = schedule;
    state.tripped.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state.domains_mu);
    state.domains.clear();
  }
  RecomputeArmedMask();
}

void FaultInjector::Reset() {
  for (SiteState& state : sites_) {
    state.schedule = FaultSchedule::Off();
    state.checks.store(0, std::memory_order_relaxed);
    state.injected.store(0, std::memory_order_relaxed);
    state.latency_spikes.store(0, std::memory_order_relaxed);
    state.tripped.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state.domains_mu);
    state.domains.clear();
  }
  RecomputeArmedMask();
}

void FaultInjector::Reseed(uint64_t seed) {
  seed_ = seed;
  for (SiteState& state : sites_) {
    state.checks.store(0, std::memory_order_relaxed);
    state.injected.store(0, std::memory_order_relaxed);
    state.latency_spikes.store(0, std::memory_order_relaxed);
    state.tripped.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state.domains_mu);
    state.domains.clear();
  }
}

void FaultInjector::RecomputeArmedMask() {
  uint32_t mask = 0;
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    if (sites_[i].schedule.mode != FaultMode::kOff) {
      mask |= (1u << i);
    }
  }
  armed_mask_.store(mask, std::memory_order_relaxed);
}

Status FaultInjector::CheckArmed(FaultSite site) {
  SiteState& state = sites_[static_cast<size_t>(site)];
  const FaultSchedule& schedule = state.schedule;
  // 1-based index of this check at this site. fetch_add makes concurrent
  // checks each see a distinct index; on the sequential control path (the
  // only place generator fault sites are consulted) indices are the exact
  // sequence 1, 2, 3, ...
  const uint64_t idx = state.checks.fetch_add(1, std::memory_order_relaxed) + 1;

  if (state.tripped.load(std::memory_order_relaxed)) {
    state.injected.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        std::string("injected permanent fault at ") + FaultSiteToString(site) +
        " (site tripped; check #" + std::to_string(idx) + ")");
  }

  bool fire = false;
  switch (schedule.mode) {
    case FaultMode::kOff:
      break;
    case FaultMode::kProbability: {
      const uint64_t h =
          Mix(seed_ ^ Mix(static_cast<uint64_t>(site) + 1) ^ Mix(idx));
      fire = ToUnit(h) < schedule.probability;
      break;
    }
    case FaultMode::kEveryNth:
      fire = schedule.every_nth != 0 && idx % schedule.every_nth == 0;
      break;
    case FaultMode::kSteps:
      fire = std::binary_search(schedule.steps.begin(), schedule.steps.end(),
                                idx);
      break;
  }
  if (!fire) return Status::OK();

  if (schedule.kind == FaultKind::kLatencySpike) {
    state.latency_spikes.fetch_add(1, std::memory_order_relaxed);
    if (schedule.latency_spike_ns > 0) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(schedule.latency_spike_ns));
    }
    return Status::OK();
  }

  state.injected.fetch_add(1, std::memory_order_relaxed);
  if (schedule.kind == FaultKind::kPermanentError) {
    state.tripped.store(true, std::memory_order_relaxed);
    return Status::Unavailable(
        std::string("injected permanent fault at ") + FaultSiteToString(site) +
        " (check #" + std::to_string(idx) + ")");
  }
  return Status::Unavailable(
      std::string("injected transient fault at ") + FaultSiteToString(site) +
      " (check #" + std::to_string(idx) + ")");
}

Status FaultInjector::CheckDomainArmed(FaultSite site, uint32_t domain,
                                       uint64_t* stall_ns) {
  SiteState& state = sites_[static_cast<size_t>(site)];
  const FaultSchedule& schedule = state.schedule;
  state.checks.fetch_add(1, std::memory_order_relaxed);

  uint64_t idx;
  bool tripped;
  {
    std::lock_guard<std::mutex> lock(state.domains_mu);
    DomainState& d = state.domains[domain];
    idx = ++d.checks;  // 1-based, per (site, domain)
    tripped = d.tripped;
  }
  const std::string where = std::string(FaultSiteToString(site)) + " domain " +
                            std::to_string(domain);
  if (tripped) {
    state.injected.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected permanent fault at " + where +
                               " (domain tripped; check #" +
                               std::to_string(idx) + ")");
  }

  // A schedule restricted to explicit domains leaves every other domain
  // clean (its checks still advance, so the stream stays per-domain).
  if (!schedule.domains.empty() &&
      std::find(schedule.domains.begin(), schedule.domains.end(), domain) ==
          schedule.domains.end()) {
    return Status::OK();
  }

  bool fire = false;
  switch (schedule.mode) {
    case FaultMode::kOff:
      break;
    case FaultMode::kProbability: {
      // Same mixer as CheckArmed with the domain folded in, so every domain
      // draws from its own deterministic stream.
      const uint64_t h =
          Mix(seed_ ^ Mix(static_cast<uint64_t>(site) + 1) ^
              Mix(0x5D0 + static_cast<uint64_t>(domain)) ^ Mix(idx));
      fire = ToUnit(h) < schedule.probability;
      break;
    }
    case FaultMode::kEveryNth:
      fire = schedule.every_nth != 0 && idx % schedule.every_nth == 0;
      break;
    case FaultMode::kSteps:
      fire = std::binary_search(schedule.steps.begin(), schedule.steps.end(),
                                idx);
      break;
  }
  if (!fire) return Status::OK();

  if (schedule.kind == FaultKind::kLatencySpike) {
    state.latency_spikes.fetch_add(1, std::memory_order_relaxed);
    if (stall_ns != nullptr) {
      *stall_ns = schedule.latency_spike_ns;
    } else if (schedule.latency_spike_ns > 0) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(schedule.latency_spike_ns));
    }
    return Status::OK();
  }

  state.injected.fetch_add(1, std::memory_order_relaxed);
  if (schedule.kind == FaultKind::kPermanentError) {
    std::lock_guard<std::mutex> lock(state.domains_mu);
    state.domains[domain].tripped = true;
    return Status::Unavailable("injected permanent fault at " + where +
                               " (check #" + std::to_string(idx) + ")");
  }
  return Status::Unavailable("injected transient fault at " + where +
                             " (check #" + std::to_string(idx) + ")");
}

FaultSiteStats FaultInjector::site_stats(FaultSite site) const {
  const SiteState& state = sites_[static_cast<size_t>(site)];
  FaultSiteStats stats;
  stats.checks = state.checks.load(std::memory_order_relaxed);
  stats.injected = state.injected.load(std::memory_order_relaxed);
  stats.latency_spikes = state.latency_spikes.load(std::memory_order_relaxed);
  return stats;
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (const SiteState& state : sites_) {
    total += state.injected.load(std::memory_order_relaxed);
  }
  return total;
}

std::string FaultInjector::DescribeSchedules() const {
  std::string out;
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    const FaultSchedule& s = sites_[i].schedule;
    if (s.mode == FaultMode::kOff) continue;
    out += "  ";
    out += FaultSiteToString(static_cast<FaultSite>(i));
    switch (s.mode) {
      case FaultMode::kOff:
        break;
      case FaultMode::kProbability:
        out += " prob " + std::to_string(s.probability);
        break;
      case FaultMode::kEveryNth:
        out += " nth " + std::to_string(s.every_nth);
        break;
      case FaultMode::kSteps: {
        out += " steps";
        for (uint64_t step : s.steps) out += " " + std::to_string(step);
        break;
      }
    }
    switch (s.kind) {
      case FaultKind::kTransientError:
        out += " transient";
        break;
      case FaultKind::kPermanentError:
        out += " permanent";
        break;
      case FaultKind::kLatencySpike:
        out += " latency " + std::to_string(s.latency_spike_ns) + "ns";
        break;
    }
    if (!s.domains.empty()) {
      out += " domains";
      for (uint32_t d : s.domains) out += " " + std::to_string(d);
    }
    out += "\n";
  }
  if (out.empty()) out = "  (all sites off)\n";
  return out;
}

}  // namespace precis
