// Bounded, deadline-aware exponential-backoff retry for transient faults.
//
// RetryWithBackoff wraps a callable returning Status or Result<T>. Only
// StatusCode::kUnavailable — the code the FaultInjector produces for
// transient/permanent storage faults — is retried; every other error (and
// success) passes straight through. Between attempts the wrapper sleeps an
// exponentially growing backoff, but never past the ExecutionContext's
// deadline: when the remaining time cannot cover the next backoff the
// wrapper gives up immediately and returns the last error, so a query under
// deadline pressure degrades instead of burning its remaining budget
// sleeping (DESIGN.md §12).
//
// Determinism note: the retry *decision* sequence (how many attempts each
// operation makes) is a pure function of the injector's deterministic fault
// sequence and the policy's max_attempts — backoff sleeps affect wall-clock
// only, never which attempt succeeds. That is what lets the parallel
// generator replay retries bit-exactly via CheckFaultWithRetry below.

#ifndef PRECIS_COMMON_RETRY_H_
#define PRECIS_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "common/result.h"
#include "common/status.h"

namespace precis {
namespace retry_internal {

inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
inline const Status& StatusOf(const Result<T>& r) {
  return r.status();
}

}  // namespace retry_internal

/// \brief Runs `fn` up to policy.max_attempts times, retrying only
/// Unavailable errors with capped exponential backoff that never overshoots
/// the context deadline. `retries`, when non-null, is incremented once per
/// retry actually performed (attempts beyond the first).
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, ExecutionContext* ctx,
                      Fn&& fn, uint64_t* retries = nullptr) -> decltype(fn()) {
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  uint64_t backoff_ns = policy.initial_backoff_ns;
  for (int attempt = 1;; ++attempt) {
    auto result = fn();
    const Status& status = retry_internal::StatusOf(result);
    if (status.ok() || !status.IsUnavailable() || attempt >= max_attempts) {
      return result;
    }
    // Give up early when the query is already cancelled or out of time:
    // sleeping toward a missed deadline helps nobody.
    if (ctx != nullptr) {
      if (ctx->cancelled()) return result;
      if (auto remaining = ctx->RemainingSeconds()) {
        const double backoff_seconds = static_cast<double>(backoff_ns) * 1e-9;
        if (*remaining <= backoff_seconds) return result;
      }
    }
    if (retries != nullptr) ++*retries;
    if (backoff_ns > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff_ns));
    }
    const double next =
        static_cast<double>(backoff_ns) * policy.backoff_multiplier;
    backoff_ns = next >= static_cast<double>(policy.max_backoff_ns)
                     ? policy.max_backoff_ns
                     : static_cast<uint64_t>(next);
  }
}

/// \brief A retried fault check: the unit the parallel planner uses to
/// *replay* the sequential walk's per-Get fault/retry sequence without
/// touching storage (the chunk tasks fetch via FetchPrevalidated, which
/// never consults the injector). Consumes exactly the same injector check
/// indices as `RetryWithBackoff(policy, ctx, [&]{ return Get(...); })`
/// would on the sequential path.
inline Status CheckFaultWithRetry(ExecutionContext* ctx, FaultSite site,
                                  const RetryPolicy& policy,
                                  uint64_t* retries = nullptr) {
  if (ctx == nullptr || ctx->fault_injector() == nullptr) return Status::OK();
  return RetryWithBackoff(
      policy, ctx, [ctx, site] { return ctx->CheckFault(site); }, retries);
}

}  // namespace precis

#endif  // PRECIS_COMMON_RETRY_H_
