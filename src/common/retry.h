// Bounded, deadline-aware exponential-backoff retry for transient faults.
//
// RetryWithBackoff wraps a callable returning Status or Result<T>. Only
// StatusCode::kUnavailable — the code the FaultInjector produces for
// transient/permanent storage faults — is retried; every other error (and
// success) passes straight through. Between attempts the wrapper sleeps an
// exponentially growing backoff, but never past the ExecutionContext's
// deadline: when the remaining time cannot cover the next backoff the
// wrapper gives up immediately and returns the last error, so a query under
// deadline pressure degrades instead of burning its remaining budget
// sleeping (DESIGN.md §12).
//
// Determinism note: the retry *decision* sequence (how many attempts each
// operation makes) is a pure function of the injector's deterministic fault
// sequence and the policy's max_attempts — backoff sleeps affect wall-clock
// only, never which attempt succeeds. That is what lets the parallel
// generator replay retries bit-exactly via CheckFaultWithRetry below.
//
// Jitter (DESIGN.md §17): each sleep is shaved by a seed-derived fraction in
// [0, policy.backoff_jitter] so the retries of many concurrent queries
// hitting the same recovering shard decorrelate instead of stampeding in
// lockstep. The jitter factor is a pure function of (injector seed, fault
// site, attempt) through the same splitmix64 mixer the injector uses — and
// it scales only the sleep, never the give-up comparison, so the decision
// sequence is exactly the unjittered one.

#ifndef PRECIS_COMMON_RETRY_H_
#define PRECIS_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "common/result.h"
#include "common/status.h"

namespace precis {
namespace retry_internal {

inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
inline const Status& StatusOf(const Result<T>& r) {
  return r.status();
}

/// The seed-derived fraction of one backoff sleep to shave off: a pure
/// function of (seed, site-derived stream, attempt) in [0, jitter].
inline double JitterFraction(double jitter, uint64_t seed,
                             uint64_t jitter_stream, int attempt) {
  if (jitter <= 0.0) return 0.0;
  const uint64_t h = FaultMix(seed ^ FaultMix(jitter_stream) ^
                              FaultMix(static_cast<uint64_t>(attempt)));
  return jitter * (static_cast<double>(h >> 11) * 0x1.0p-53);
}

template <typename Fn>
auto RetryWithBackoffImpl(const RetryPolicy& policy, ExecutionContext* ctx,
                          uint64_t jitter_stream, Fn&& fn, uint64_t* retries)
    -> decltype(fn()) {
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  const uint64_t jitter_seed =
      ctx != nullptr && ctx->fault_injector() != nullptr
          ? ctx->fault_injector()->seed()
          : 0;
  uint64_t backoff_ns = policy.initial_backoff_ns;
  for (int attempt = 1;; ++attempt) {
    auto result = fn();
    const Status& status = retry_internal::StatusOf(result);
    if (status.ok() || !status.IsUnavailable() || attempt >= max_attempts) {
      return result;
    }
    // Give up early when the query is already cancelled or out of time:
    // sleeping toward a missed deadline helps nobody. Compared against the
    // *unjittered* backoff so the give-up decision ignores jitter.
    if (ctx != nullptr) {
      if (ctx->cancelled()) return result;
      if (auto remaining = ctx->RemainingSeconds()) {
        const double backoff_seconds = static_cast<double>(backoff_ns) * 1e-9;
        if (*remaining <= backoff_seconds) return result;
      }
    }
    if (retries != nullptr) ++*retries;
    if (backoff_ns > 0) {
      const double shaved = JitterFraction(policy.backoff_jitter, jitter_seed,
                                           jitter_stream, attempt);
      const uint64_t sleep_ns =
          backoff_ns -
          static_cast<uint64_t>(static_cast<double>(backoff_ns) * shaved);
      if (sleep_ns > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
      }
    }
    const double next =
        static_cast<double>(backoff_ns) * policy.backoff_multiplier;
    backoff_ns = next >= static_cast<double>(policy.max_backoff_ns)
                     ? policy.max_backoff_ns
                     : static_cast<uint64_t>(next);
  }
}

}  // namespace retry_internal

/// \brief Runs `fn` up to policy.max_attempts times, retrying only
/// Unavailable errors with capped exponential backoff that never overshoots
/// the context deadline. `retries`, when non-null, is incremented once per
/// retry actually performed (attempts beyond the first). This overload
/// draws jitter from a site-less stream; call sites that know their fault
/// site should use the FaultSite overload so their jitter streams diverge.
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, ExecutionContext* ctx,
                      Fn&& fn, uint64_t* retries = nullptr) -> decltype(fn()) {
  return retry_internal::RetryWithBackoffImpl(policy, ctx, /*jitter_stream=*/0,
                                              std::forward<Fn>(fn), retries);
}

/// \brief Site-aware variant: the jitter stream is derived from `site`, so
/// retries at different sites (and thus against different resources)
/// decorrelate from each other as well as across attempts.
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, ExecutionContext* ctx,
                      FaultSite site, Fn&& fn, uint64_t* retries = nullptr)
    -> decltype(fn()) {
  return retry_internal::RetryWithBackoffImpl(
      policy, ctx, static_cast<uint64_t>(site) + 1, std::forward<Fn>(fn),
      retries);
}

/// \brief A retried fault check: the unit the parallel planner uses to
/// *replay* the sequential walk's per-Get fault/retry sequence without
/// touching storage (the chunk tasks fetch via FetchPrevalidated, which
/// never consults the injector). Consumes exactly the same injector check
/// indices as `RetryWithBackoff(policy, ctx, [&]{ return Get(...); })`
/// would on the sequential path.
inline Status CheckFaultWithRetry(ExecutionContext* ctx, FaultSite site,
                                  const RetryPolicy& policy,
                                  uint64_t* retries = nullptr) {
  if (ctx == nullptr || ctx->fault_injector() == nullptr) return Status::OK();
  return RetryWithBackoff(
      policy, ctx, site, [ctx, site] { return ctx->CheckFault(site); },
      retries);
}

}  // namespace precis

#endif  // PRECIS_COMMON_RETRY_H_
