// Status: Arrow/RocksDB-style error propagation without exceptions.
//
// All fallible operations in this codebase return Status (or Result<T>,
// see result.h). Exceptions are not thrown across module boundaries.

#ifndef PRECIS_COMMON_STATUS_H_
#define PRECIS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace precis {

/// \brief Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kConstraintViolation,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  /// Transient failure of a dependency (e.g. an injected storage fault).
  /// Callers may retry; see common/retry.h for the backoff policy.
  kUnavailable,
  /// The service admission queue is full; the request was shed, not run.
  kOverloaded,
};

/// \brief Returns a human-readable name for a status code ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Cheap to copy in the OK case (no allocation); error construction pays for
/// one string. Use the factory methods (Status::InvalidArgument(...) etc.) to
/// build errors and the PRECIS_RETURN_NOT_OK macro to propagate them.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsConstraintViolation() const {
    return code_ == StatusCode::kConstraintViolation;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace precis

/// Propagates a non-OK Status to the caller.
#define PRECIS_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::precis::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

#endif  // PRECIS_COMMON_STATUS_H_
