// POSIX socket and shutdown-signal utilities shared by the HTTP front end
// (src/server), the serving binary (tools/precis_serve) and the open-loop
// load generator (bench/load_gen).
//
// Everything here is a thin, Status-returning wrapper over the POSIX calls
// this project already assumes (precis_shell uses isatty); no third-party
// networking dependency is introduced.

#ifndef PRECIS_COMMON_NET_UTIL_H_
#define PRECIS_COMMON_NET_UTIL_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace precis {

/// \brief Opens a TCP listening socket bound to `address:port`.
///
/// SO_REUSEADDR is set (restart-friendly), the socket is left *blocking*
/// (the accept loop owns its own thread and polls before accepting), and
/// `port` 0 asks the kernel for an ephemeral port — read the real one back
/// with LocalPort(). Returns the listening fd.
Result<int> ListenTcp(const std::string& address, uint16_t port,
                      int backlog = 128);

/// \brief Connects to `address:port` (blocking). Returns the connected fd.
Result<int> ConnectTcp(const std::string& address, uint16_t port);

/// \brief The local port a bound socket ended up on (resolves port 0).
Result<uint16_t> LocalPort(int fd);

/// \brief Switches a descriptor to non-blocking mode.
Status SetNonBlocking(int fd);

/// \brief Disables Nagle's algorithm (small request/response exchanges).
Status SetTcpNoDelay(int fd);

/// \brief close() that survives EINTR. Safe on -1 (no-op).
void CloseFd(int fd);

/// \brief Writes all of `data` to a blocking fd, retrying short writes and
/// EINTR. Fails on a closed peer.
Status WriteAll(int fd, const void* data, size_t size);

/// \brief A self-pipe used to interrupt poll() loops: Notify() makes the
/// read end readable; Drain() consumes pending notifications.
///
/// Notify() is async-signal-safe and thread-safe (a single write of one
/// byte to a non-blocking pipe); it coalesces when the pipe is full, which
/// is fine because readers treat readability as a level, not a count.
class WakeupPipe {
 public:
  /// Creates the pipe; aborts on resource exhaustion (a pipe pair at
  /// startup failing means the process has no fds at all).
  WakeupPipe();
  ~WakeupPipe();

  WakeupPipe(const WakeupPipe&) = delete;
  WakeupPipe& operator=(const WakeupPipe&) = delete;

  int read_fd() const { return fds_[0]; }
  void Notify();
  void Drain();

 private:
  int fds_[2];
};

/// \brief Process-wide graceful-shutdown latch for SIGINT / SIGTERM.
///
/// InstallShutdownHandler() registers sigaction handlers (without
/// SA_RESTART, so blocking reads — the shell's getline, the server's
/// poll — return with EINTR) that set an atomic flag and notify a single
/// process-wide WakeupPipe. Poll loops add ShutdownWakeupFd() to their fd
/// set; line loops test ShutdownRequested() after an interrupted read.
/// Idempotent; the second signal restores the default disposition so a
/// stuck process can still be killed with a repeated Ctrl-C.
void InstallShutdownHandler();

/// \brief True once SIGINT or SIGTERM was received.
bool ShutdownRequested();

/// \brief Readable when shutdown was requested (for poll loops). Valid
/// only after InstallShutdownHandler().
int ShutdownWakeupFd();

/// \brief Test hook: re-arms the latch as if no signal had been seen.
void ResetShutdownForTesting();

}  // namespace precis

#endif  // PRECIS_COMMON_NET_UTIL_H_
