#include "common/status.h"

namespace precis {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kConstraintViolation:
      return "Constraint violation";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace precis
