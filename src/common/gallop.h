// Galloping (exponential) search over sorted ranges (DESIGN.md §16).
//
// Intersecting a short sorted list against a long one with per-element
// binary search costs O(n_small * log n_large) with a cold cache line per
// probe. Galloping from a monotone cursor instead costs O(log gap) per
// element — near O(1) when consecutive probe targets land close together,
// which is exactly the shape of posting-list intersection where the driver
// list is the rarest word's postings.

#ifndef PRECIS_COMMON_GALLOP_H_
#define PRECIS_COMMON_GALLOP_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace precis {

/// \brief Index of the first element in sorted `v[from..)` that is not less
/// than `value` (i.e. std::lower_bound restricted to the tail), found by
/// exponential probing followed by a binary search over the bracketed
/// window.
///
/// Requires: `v` sorted ascending by `operator<` and every element before
/// `from` less than `value` (the monotone-cursor invariant — callers pass
/// the position returned for the previous, smaller probe value).
template <typename T>
size_t GallopLowerBound(const std::vector<T>& v, size_t from, const T& value) {
  const size_t n = v.size();
  size_t hi = from;
  size_t step = 1;
  // Double the stride until v[hi] >= value (or the range ends); the answer
  // then lies in (previous hi, hi].
  while (hi < n && v[hi] < value) {
    from = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > n) hi = n;
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<ptrdiff_t>(from),
                       v.begin() + static_cast<ptrdiff_t>(hi), value) -
      v.begin());
}

/// \brief Monotone membership cursor over one sorted list, for intersecting
/// it against an ascending stream of probe values. Each Contains advances
/// the cursor with GallopLowerBound, so a full intersection pass touches
/// the list once instead of binary-searching it from scratch per probe.
template <typename T>
class GallopCursor {
 public:
  explicit GallopCursor(const std::vector<T>* list) : list_(list) {}

  /// True if `value` is present at or after the cursor. Probe values must
  /// be non-decreasing across calls.
  bool Contains(const T& value) {
    pos_ = GallopLowerBound(*list_, pos_, value);
    return pos_ < list_->size() && !(value < (*list_)[pos_]);
  }

 private:
  const std::vector<T>* list_;
  size_t pos_ = 0;
};

}  // namespace precis

#endif  // PRECIS_COMMON_GALLOP_H_
