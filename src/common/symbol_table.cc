#include "common/symbol_table.h"

#include <cassert>
#include <functional>

namespace precis {

// One shard: a mutex-guarded intern map plus lock-free slab storage.
//
// Ids are laid out as (local_index * kNumShards) + shard, so an id both
// names its shard (modulo) and its slot within it (division) without a
// lookup. Blocks are fixed arrays published into an atomic pointer slot
// with release ordering; a reader that holds a valid id is guaranteed
// (by whatever synchronization handed it the id, plus the acquire load
// here) to see the fully constructed slot.
struct SymbolTable::Shard {
  std::mutex mu;
  // Keys are views into the slot-owned strings; the slot outlives the map.
  std::unordered_map<std::string_view, uint32_t> map;
  std::atomic<Block*> blocks[kMaxBlocks] = {};
  uint32_t size = 0;               // slots filled, guarded by mu
  uint64_t bytes = 0;              // interned byte total, guarded by mu
  std::atomic<uint64_t> interns{0};

  ~Shard() {
    for (auto& b : blocks) delete b.load(std::memory_order_relaxed);
  }
};

SymbolTable* SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();  // leaked: ids never die
  return table;
}

SymbolTable::SymbolTable() : shards_(new Shard[kNumShards]) {}
SymbolTable::~SymbolTable() = default;

SymbolId SymbolTable::Intern(std::string_view s) {
  const size_t h = std::hash<std::string_view>{}(s);
  Shard& shard = shards_[h & (kNumShards - 1)];
  shard.interns.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(s);
  if (it != shard.map.end()) {
    return SymbolId{it->second * kNumShards +
                    uint32_t(h & (kNumShards - 1))};
  }
  const uint32_t local = shard.size;
  const uint32_t block_idx = local / kBlockSize;
  assert(block_idx < kMaxBlocks && "symbol table shard full");
  Block* block = shard.blocks[block_idx].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Block();
    shard.blocks[block_idx].store(block, std::memory_order_release);
  }
  Slot& slot = block->slots[local % kBlockSize];
  slot.str.assign(s.data(), s.size());
  // std::hash<std::string_view> and std::hash<std::string> are required
  // to agree on equal character sequences, so memoizing the view hash
  // preserves the exact values std::hash<std::string> produced before.
  slot.hash = h;
  shard.map.emplace(std::string_view(slot.str), local);
  shard.size = local + 1;
  shard.bytes += s.size();
  return SymbolId{local * kNumShards + uint32_t(h & (kNumShards - 1))};
}

const std::string& SymbolTable::str(SymbolId id) const {
  const Shard& shard = shards_[id % kNumShards];
  const uint32_t local = id / kNumShards;
  Block* block =
      shard.blocks[local / kBlockSize].load(std::memory_order_acquire);
  return block->slots[local % kBlockSize].str;
}

size_t SymbolTable::hash(SymbolId id) const {
  const Shard& shard = shards_[id % kNumShards];
  const uint32_t local = id / kNumShards;
  Block* block =
      shard.blocks[local / kBlockSize].load(std::memory_order_acquire);
  return block->slots[local % kBlockSize].hash;
}

SymbolTableStats SymbolTable::stats() const {
  SymbolTableStats out;
  for (uint32_t i = 0; i < kNumShards; ++i) {
    Shard& shard = shards_[i];
    out.interns += shard.interns.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard.mu);
    out.symbols += shard.size;
    out.bytes += shard.bytes;
    out.blocks += (shard.size + kBlockSize - 1) / kBlockSize;
  }
  return out;
}

}  // namespace precis
