// Per-shard circuit breaker (DESIGN.md §17).
//
// The classic three-state machine guarding calls into a fault domain:
//
//   kClosed    — calls flow; `failure_threshold` *consecutive* failures
//                open the circuit.
//   kOpen      — Allow() rejects without touching the domain. After
//                `cooldown_rejects` rejected decisions the breaker moves to
//                half-open (the next caller probes).
//   kHalfOpen  — exactly one probe is admitted; its success closes the
//                circuit, its failure re-opens it (and restarts the
//                cooldown).
//
// The cooldown is measured in *rejected Allow() decisions*, not wall time:
// a wall-clock cooldown would make "did this query skip the shard or probe
// it?" depend on scheduler timing, while a decision-counted cooldown keeps
// the skip/probe sequence a pure function of the call sequence — the same
// determinism discipline as the FaultInjector (DESIGN.md §12). Under a
// permanently dead shard the distinction never reaches the answer bytes
// anyway (skip and probe-fail both exclude the shard), but the counters and
// the state machine itself stay reproducible in single-threaded tests.
//
// Thread safety: all methods are mutex-protected; a breaker is shared by
// every query the engine serves concurrently.

#ifndef PRECIS_COMMON_CIRCUIT_BREAKER_H_
#define PRECIS_COMMON_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>

namespace precis {

/// \brief Breaker tuning; member defaults are the serving defaults.
struct CircuitBreakerPolicy {
  /// Consecutive failures that open a closed circuit.
  uint32_t failure_threshold = 3;
  /// Rejected Allow() decisions an open circuit absorbs before admitting a
  /// half-open probe.
  uint32_t cooldown_rejects = 8;
};

enum class BreakerState : uint8_t { kClosed = 0, kOpen, kHalfOpen };

inline const char* BreakerStateToString(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

/// \brief Counter snapshot, exported via /metrics and shell `stats`.
struct CircuitBreakerStats {
  BreakerState state = BreakerState::kClosed;
  uint32_t consecutive_failures = 0;
  uint64_t failures_total = 0;
  uint64_t successes_total = 0;
  /// Allow() calls rejected while the circuit was open.
  uint64_t rejected_total = 0;
  /// Closed -> open transitions (including half-open probes that failed).
  uint64_t opened_total = 0;
  /// Open -> half-open transitions (probes admitted).
  uint64_t half_open_probes = 0;
};

/// \brief Closed / open / half-open breaker with decision-counted cooldown.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerPolicy policy = CircuitBreakerPolicy())
      : policy_(policy) {}

  /// True when the caller may contact the domain (closed, or admitted as
  /// the half-open probe). False counts toward the cooldown; once
  /// `cooldown_rejects` rejections have accumulated the *next* Allow()
  /// becomes the half-open probe.
  bool Allow() {
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
      case BreakerState::kClosed:
        return true;
      case BreakerState::kHalfOpen:
        // One probe at a time: further callers are rejected until the
        // probe reports back.
        if (probe_in_flight_) {
          ++rejected_total_;
          return false;
        }
        probe_in_flight_ = true;
        return true;
      case BreakerState::kOpen:
        if (rejects_since_open_ >= policy_.cooldown_rejects) {
          state_ = BreakerState::kHalfOpen;
          ++half_open_probes_;
          probe_in_flight_ = true;
          return true;
        }
        ++rejects_since_open_;
        ++rejected_total_;
        return false;
    }
    return true;
  }

  void RecordSuccess() {
    std::lock_guard<std::mutex> lock(mu_);
    ++successes_total_;
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
    state_ = BreakerState::kClosed;
  }

  void RecordFailure() {
    std::lock_guard<std::mutex> lock(mu_);
    ++failures_total_;
    ++consecutive_failures_;
    if (state_ == BreakerState::kHalfOpen) {
      // Failed probe: straight back to open, cooldown restarts.
      Open();
      return;
    }
    if (state_ == BreakerState::kClosed &&
        consecutive_failures_ >= policy_.failure_threshold) {
      Open();
    }
  }

  BreakerState state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  CircuitBreakerStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    CircuitBreakerStats s;
    s.state = state_;
    s.consecutive_failures = consecutive_failures_;
    s.failures_total = failures_total_;
    s.successes_total = successes_total_;
    s.rejected_total = rejected_total_;
    s.opened_total = opened_total_;
    s.half_open_probes = half_open_probes_;
    return s;
  }

  const CircuitBreakerPolicy& policy() const { return policy_; }

 private:
  void Open() {
    state_ = BreakerState::kOpen;
    rejects_since_open_ = 0;
    probe_in_flight_ = false;
    ++opened_total_;
  }

  CircuitBreakerPolicy policy_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint32_t rejects_since_open_ = 0;
  bool probe_in_flight_ = false;
  uint64_t failures_total_ = 0;
  uint64_t successes_total_ = 0;
  uint64_t rejected_total_ = 0;
  uint64_t opened_total_ = 0;
  uint64_t half_open_probes_ = 0;
};

}  // namespace precis

#endif  // PRECIS_COMMON_CIRCUIT_BREAKER_H_
