// Deterministic, seed-driven fault injection for the storage stack.
//
// A FaultInjector is attached to an ExecutionContext (one per query, or one
// shared across a workload) and consulted at named *fault sites* — the
// storage- and translator-layer operations a production deployment would see
// fail: index probes, tuple fetches by tid, join-value lookups, relation
// scans, and translator catalog lookups. Each site carries an independent
// FaultSchedule that decides, purely as a function of (seed, site, check
// index), whether a given check injects a transient error, a permanent
// error, or a latency spike. Because the decision depends only on that
// triple, a rerun with the same seed and the same sequence of checks
// reproduces the same faults bit-for-bit — which is what lets the chaos
// suite assert byte-identical answers across reruns and across
// sequential/parallel database generation (DESIGN.md §12).
//
// Determinism contract with the parallel generator: fault checks fire only
// on the sequential control path (the planner thread). Parallel chunk tasks
// fetch through Relation::FetchPrevalidated, which never consults the
// injector, and the planner replays the sequential fault-check sequence at
// exactly the positions the sequential walk would issue Gets — the same
// mechanism PR 3 uses to replay budget charges (`sim_charges`).
//
// Thread safety: Check() is safe to call concurrently (per-site atomic
// counters). Configuration (SetSchedule/Reset/Reseed) must not race with
// in-flight checks — reconfigure between queries, the same contract the
// engine's set_* toggles follow.

#ifndef PRECIS_COMMON_FAULT_INJECTION_H_
#define PRECIS_COMMON_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace precis {

/// \brief Named operations where a fault can be injected.
enum class FaultSite : uint8_t {
  kIndexProbe = 0,      ///< Relation::LookupEquals via an inverted index.
  kTupleFetch = 1,      ///< Relation::Get (fetch tuple by tid).
  kJoinValueLookup = 2, ///< Per-join-key lookup in the sql layer.
  kRelationScan = 3,    ///< Relation::LookupEquals via sequential scan.
  kTranslatorCatalog = 4, ///< Template catalog lookup while rendering.
  kShardSubquery = 5,   ///< One shard's sub-query (domain = shard id).
  kShardTimeout = 6,    ///< One shard stalling (domain = shard id).
};

inline constexpr size_t kNumFaultSites = 7;

/// \brief "index_probe", "tuple_fetch", ... (stable, used in reports/JSON).
const char* FaultSiteToString(FaultSite site);

/// \brief Parses a site name; accepts both the canonical names above and the
/// shell short forms (probe, fetch, join, scan, catalog, shard, stall).
Result<FaultSite> ParseFaultSite(const std::string& name);

/// \brief splitmix64 finalizer — the mixer every seed-derived deterministic
/// decision in the tree shares (fault schedules, retry jitter), exposed so
/// those decisions stay pure functions of their mixed inputs.
uint64_t FaultMix(uint64_t x);

/// \brief When a site's schedule decides to fire.
enum class FaultMode : uint8_t {
  kOff = 0,         ///< Never fires.
  kProbability,     ///< Fires on ~p of checks (deterministic per seed).
  kEveryNth,        ///< Fires on check indices N, 2N, 3N, ...
  kSteps,           ///< Fires exactly on an explicit list of check indices.
};

/// \brief What a firing check does.
enum class FaultKind : uint8_t {
  kTransientError = 0, ///< Status::Unavailable — retryable.
  kPermanentError,     ///< First firing latches the site: every later check
                       ///< fails too (models a dead shard / lost file).
  kLatencySpike,       ///< Sleeps latency_spike_ns, then succeeds.
};

/// \brief Per-site schedule: mode + kind + parameters.
struct FaultSchedule {
  FaultMode mode = FaultMode::kOff;
  FaultKind kind = FaultKind::kTransientError;
  double probability = 0.0;       ///< kProbability: p in [0, 1].
  uint64_t every_nth = 0;         ///< kEveryNth: period (>= 1).
  std::vector<uint64_t> steps;    ///< kSteps: sorted 1-based check indices.
  uint64_t latency_spike_ns = 100'000;  ///< kLatencySpike sleep.
  /// Restricts the schedule to these fault domains (shard ids) on
  /// CheckDomain() sites; empty = every domain. Plain Check() ignores it.
  std::vector<uint32_t> domains;

  static FaultSchedule Off() { return FaultSchedule{}; }
  static FaultSchedule Probability(double p,
                                   FaultKind kind = FaultKind::kTransientError);
  static FaultSchedule EveryNth(uint64_t n,
                                FaultKind kind = FaultKind::kTransientError);
  static FaultSchedule Steps(std::vector<uint64_t> steps,
                             FaultKind kind = FaultKind::kTransientError);
};

/// \brief Bounded, deadline-aware exponential backoff parameters.
///
/// Lives here (not retry.h) so ExecutionContext can hold one without a
/// circular include: retry.h needs ExecutionContext for deadline awareness.
struct RetryPolicy {
  /// Total attempts including the first (so 4 = 1 try + 3 retries).
  int max_attempts = 4;
  uint64_t initial_backoff_ns = 2'000;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_ns = 1'000'000;
  /// Fraction of each backoff sleep that seed-derived jitter may shave off
  /// (sleep in [(1-jitter) * backoff, backoff]), decorrelating the retry
  /// stampede a recovering shard would otherwise see. The jitter factor is
  /// a pure function of (injector seed, fault site, attempt) — wall-clock
  /// only, never which attempt succeeds — so the retry decision sequence
  /// stays bit-reproducible. 0 disables.
  double backoff_jitter = 0.5;
};

/// \brief Counters for one site, snapshot via FaultInjector::site_stats().
struct FaultSiteStats {
  uint64_t checks = 0;          ///< Decisions taken at this site.
  uint64_t injected = 0;        ///< Checks that returned an error.
  uint64_t latency_spikes = 0;  ///< Checks that slept instead.
};

/// \brief Deterministic fault source, scoped through ExecutionContext.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0);

  /// Replaces one site's schedule. Must not race with Check().
  void SetSchedule(FaultSite site, FaultSchedule schedule);
  /// Replaces every *storage/translator* site's schedule with `schedule`
  /// (kIndexProbe through kTranslatorCatalog). The shard fault-domain sites
  /// (kShardSubquery, kShardTimeout) are untouched: SetAll's contract is
  /// "storage chaos", under which a sharded run stays byte-identical to the
  /// single-engine run — shard-kill chaos is opt-in via SetSchedule.
  void SetAll(FaultSchedule schedule);
  /// All sites off, counters and permanent-failure latches cleared.
  /// The seed is preserved.
  void Reset();
  /// Clears counters/latches and installs a new seed; schedules survive.
  void Reseed(uint64_t seed);

  /// True when at least one site has a non-kOff schedule. This is the
  /// cache-taint predicate: an answer generated while armed() is tainted
  /// even if no fault actually fired (DESIGN.md §12).
  bool armed() const {
    return armed_mask_.load(std::memory_order_relaxed) != 0;
  }

  /// One fault decision. OK, or Status::Unavailable when the schedule
  /// fires (or the site is permanently tripped). Hot path: a single
  /// relaxed load when the site is off.
  Status Check(FaultSite site) {
    if ((armed_mask_.load(std::memory_order_relaxed) &
         (1u << static_cast<unsigned>(site))) == 0) {
      return Status::OK();
    }
    return CheckArmed(site);
  }

  /// One fault decision on an independent per-(site, domain) check stream —
  /// the shard-level fault primitive: domain d (a shard id) has its own
  /// 1-based check indices and its own permanent latch, so "kill shard 3"
  /// (a kPermanentError schedule with domains={3}) takes down exactly that
  /// shard no matter how concurrent queries interleave their checks. When
  /// the schedule names domains, other domains never fire (their checks
  /// still count). A firing kLatencySpike schedule sleeps inline unless
  /// `stall_ns` is non-null, in which case the spike is *returned* for the
  /// caller to serve wherever it wants (the coordinator decides, the shard
  /// task sleeps). Hot path: a single relaxed load when the site is off.
  Status CheckDomain(FaultSite site, uint32_t domain,
                     uint64_t* stall_ns = nullptr) {
    if (stall_ns != nullptr) *stall_ns = 0;
    if ((armed_mask_.load(std::memory_order_relaxed) &
         (1u << static_cast<unsigned>(site))) == 0) {
      return Status::OK();
    }
    return CheckDomainArmed(site, domain, stall_ns);
  }

  FaultSiteStats site_stats(FaultSite site) const;
  uint64_t total_injected() const;
  uint64_t seed() const { return seed_; }

  /// Multi-line human summary of the active schedules (shell `show`).
  std::string DescribeSchedules() const;

 private:
  struct DomainState {
    uint64_t checks = 0;
    bool tripped = false;  ///< per-domain kPermanentError latch
  };

  struct SiteState {
    FaultSchedule schedule;
    std::atomic<uint64_t> checks{0};
    std::atomic<uint64_t> injected{0};
    std::atomic<uint64_t> latency_spikes{0};
    std::atomic<bool> tripped{false};  ///< kPermanentError latch.
    /// Per-domain check streams (CheckDomain sites only). Mutex-guarded:
    /// domain checks are per-query per-shard, far off the storage hot path.
    std::mutex domains_mu;
    std::map<uint32_t, DomainState> domains;
  };

  Status CheckArmed(FaultSite site);
  Status CheckDomainArmed(FaultSite site, uint32_t domain, uint64_t* stall_ns);
  void RecomputeArmedMask();

  uint64_t seed_;
  std::atomic<uint32_t> armed_mask_{0};
  std::array<SiteState, kNumFaultSites> sites_;
};

}  // namespace precis

#endif  // PRECIS_COMMON_FAULT_INJECTION_H_
