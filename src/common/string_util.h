// Small string helpers shared across modules.

#ifndef PRECIS_COMMON_STRING_UTIL_H_
#define PRECIS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace precis {

/// ASCII lower-casing (the token namespace of the inverted index).
std::string ToLower(std::string_view s);

/// Strips leading/trailing whitespace.
std::string Trim(std::string_view s);

/// Splits on a single character; keeps empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace precis

#endif  // PRECIS_COMMON_STRING_UTIL_H_
