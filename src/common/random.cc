#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace precis {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::Index(size_t n) {
  assert(n > 0);
  return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected draws.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = Index(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (size_t r = 0; r < n; ++r) cdf_[r] /= total;
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace precis
