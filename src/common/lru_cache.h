// ShardedLruCache: a reusable, thread-safe, byte-capacity-bounded LRU cache.
//
// One cache class backs all three caching levels of the serving stack
// (see DESIGN.md §10):
//
//   * the InvertedIndex token-occurrence cache (multi-word phrase lookups),
//   * the PrecisEngine result-schema cache,
//   * the PrecisEngine full-answer cache.
//
// Design:
//
//   * The key space is split across N shards (default 8), each with its own
//     mutex, entry map and LRU list, so concurrent queries on different keys
//     rarely contend on the same lock (the same idea as LevelDB's
//     ShardedLRUCache).
//   * Capacity is expressed in *bytes*: every entry carries a caller-supplied
//     charge (an estimate of its footprint). Each shard owns
//     capacity / num_shards bytes and evicts from its own LRU tail when over
//     budget, so the cache never grows without bound — the fix for PR 1's
//     unbounded schema-cache map.
//   * Values are held as std::shared_ptr<const V>: a hit hands out a shared
//     reference to an immutable value, so move-only payloads (a PrecisAnswer
//     holds a Database) are cacheable without copies, and an entry evicted
//     while a reader still holds it stays alive until the last reader drops
//     it.
//   * Hit / miss / insert / eviction counters are kept per shard under the
//     shard mutex and aggregated on demand; Clear() drops entries but keeps
//     the counters (callers rely on cumulative ratios across clears).
//
// Thread-safety: all public methods may be called concurrently. Stats are a
// consistent per-shard snapshot (shards are read one at a time, so the
// aggregate may be mid-flight by a few operations — fine for metrics).

#ifndef PRECIS_COMMON_LRU_CACHE_H_
#define PRECIS_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace precis {

/// \brief Aggregated counters of one cache (or one cache level).
struct LruCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  size_t entries = 0;       // live entries right now
  size_t charge_bytes = 0;  // sum of live entry charges

  /// Hits over lookups; 0 when nothing was looked up yet.
  double hit_rate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }

  LruCacheStats& operator+=(const LruCacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    inserts += o.inserts;
    evictions += o.evictions;
    entries += o.entries;
    charge_bytes += o.charge_bytes;
    return *this;
  }
};

/// \brief Sharded, mutex-per-shard LRU cache bounded by total byte charge.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// \param capacity_bytes total byte budget across all shards (>= 1).
  /// \param num_shards number of independently locked shards (>= 1).
  explicit ShardedLruCache(size_t capacity_bytes, size_t num_shards = 8)
      : shards_(num_shards == 0 ? 1 : num_shards) {
    if (capacity_bytes == 0) capacity_bytes = 1;
    capacity_bytes_ = capacity_bytes;
    size_t per_shard = capacity_bytes / shards_.size();
    if (per_shard == 0) per_shard = 1;
    for (Shard& shard : shards_) shard.capacity = per_shard;
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Looks up `key`; a hit promotes the entry to most-recently-used and
  /// returns a shared reference to the immutable value. nullptr on miss.
  std::shared_ptr<const Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return nullptr;
    }
    ++shard.stats.hits;
    // Promote to front (most recently used).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
  }

  /// Inserts (or replaces) `key` with `value`, charged `charge` bytes
  /// against the shard budget; evicts least-recently-used entries as needed.
  /// An entry whose charge alone exceeds the shard budget is evicted
  /// immediately (counted as insert + eviction) — the cache never holds it.
  void Put(const Key& key, std::shared_ptr<const Value> value,
           size_t charge) {
    if (charge == 0) charge = 1;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.charge -= it->second->charge;
      it->second->value = std::move(value);
      it->second->charge = charge;
      shard.charge += charge;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(value), charge});
      shard.index.emplace(key, shard.lru.begin());
      shard.charge += charge;
    }
    ++shard.stats.inserts;
    while (shard.charge > shard.capacity && !shard.lru.empty()) {
      const Entry& victim = shard.lru.back();
      shard.charge -= victim.charge;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++shard.stats.evictions;
    }
  }

  /// Removes `key` if present. Returns true if an entry was removed.
  bool Erase(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.charge -= it->second->charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return true;
  }

  /// Drops every entry; hit/miss/insert/eviction counters are preserved.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.lru.clear();
      shard.index.clear();
      shard.charge = 0;
    }
  }

  /// Aggregated counters across all shards.
  LruCacheStats stats() const {
    LruCacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.stats;
      total.entries += shard.index.size();
      total.charge_bytes += shard.charge;
    }
    return total;
  }

  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
    size_t charge;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator> index;
    size_t capacity = 0;
    size_t charge = 0;
    LruCacheStats stats;  // entries/charge_bytes unused here (derived)
  };

  Shard& ShardFor(const Key& key) {
    // Mix the hash so clustered low bits still spread across shards.
    size_t h = Hash()(key);
    h ^= h >> 17;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return shards_[h % shards_.size()];
  }

  std::vector<Shard> shards_;
  size_t capacity_bytes_ = 0;
};

}  // namespace precis

#endif  // PRECIS_COMMON_LRU_CACHE_H_
