// TaskPool: a fixed-size work-stealing thread pool for intra-query
// parallelism (DESIGN.md §11).
//
// Design points:
//
//   * Fixed worker threads, each owning a deque of tasks. The owner pushes
//     and pops at the back (LIFO: hot caches, bounded memory for recursive
//     fan-out); thieves steal *half* the victim's tasks from the front
//     (FIFO: the oldest — usually largest — work moves, and one steal
//     amortizes many future ones).
//   * Idle workers park on a condition variable; submissions wake one
//     parked worker. No spinning beyond one steal sweep.
//   * Nested submission is expected (a subtree task fans out tuple-fetch
//     chunks). To keep nesting deadlock-free and the stack bounded, task
//     execution depth is tracked per thread: beyond a cap, Group::Run
//     executes the task inline instead of queueing, and Group::Wait stops
//     helping and blocks.
//   * Waiting *helps*: a thread blocked in Group::Wait executes pool tasks
//     (its own group's first by LIFO affinity, then stolen ones) instead of
//     sleeping, so an external caller — e.g. a PrecisService worker — lends
//     its thread to the pool rather than adding to the runnable set. This
//     is what lets one process-wide pool serve `service workers × per-query
//     subtree tasks` without oversubscription.
//
// Exceptions thrown by tasks are captured (first one wins) and rethrown
// from Group::Wait on the waiting thread.
//
// The pool is deliberately mutex-per-deque rather than lock-free: tasks in
// this codebase are hundreds of microseconds and up (tuple-fetch chunks,
// subtree expansions), so queue transfer cost is noise, and the simple
// locking discipline is straightforwardly ThreadSanitizer-clean.

#ifndef PRECIS_COMMON_TASK_POOL_H_
#define PRECIS_COMMON_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace precis {

/// \brief Fixed-size work-stealing task pool. Thread-safe.
class TaskPool {
 public:
  class Group;

  /// Starts `num_threads` workers (clamped to >= 1).
  explicit TaskPool(size_t num_threads);

  /// Drains every queued task, then joins the workers. Groups must not
  /// outlive the pool they run on.
  ~TaskPool();

  /// Destructor body, callable explicitly: drains queued tasks and joins
  /// the workers. Idempotent. Exposed so a process can stop the Shared()
  /// pool's threads on graceful exit — the pool object itself stays leaked,
  /// but sanitizer runs (TSan/ASan) see every thread joined before main
  /// returns. No Group may be running or waiting when this is called.
  void Shutdown();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// The process-wide shared pool, created on first use and never torn
  /// down (it must outlive any static-destruction-ordered user). Sized by
  /// PRECIS_TASK_POOL_THREADS when set, else max(2, hardware_concurrency).
  static TaskPool* Shared();

  /// \brief A set of tasks that can be waited on together (fork-join).
  ///
  /// Run() submits a task; Wait() blocks until every task submitted so far
  /// has finished, executing pool tasks itself while it waits. Nested use —
  /// a task Run()ning more tasks into its own group — is supported and is
  /// the intended shape for subtree fan-out.
  class Group {
   public:
    explicit Group(TaskPool* pool) : pool_(pool) {}
    /// Waits for stragglers; any captured exception is swallowed here (use
    /// Wait() to observe it).
    ~Group();

    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    /// Submits `fn` to the pool. If the calling thread is already `depth
    /// cap` tasks deep (pathological recursive fan-out), runs `fn` inline
    /// instead — bounded stack, no queue explosion, no deadlock.
    void Run(std::function<void()> fn);

    /// Blocks until all submitted tasks completed, helping execute pool
    /// tasks meanwhile. Rethrows the first exception any task of this
    /// group threw. May be called multiple times (tasks submitted after a
    /// Wait are covered by the next Wait).
    void Wait();

    /// Tasks submitted and not yet finished (approximate; for tests).
    size_t pending() const { return pending_.load(std::memory_order_acquire); }

   private:
    friend class TaskPool;

    void TaskDone() noexcept;
    void CaptureException() noexcept;

    TaskPool* pool_;
    std::atomic<size_t> pending_{0};
    std::mutex mutex_;                 // guards error_ and cv waits
    std::condition_variable done_cv_;  // signalled when pending_ hits 0
    std::exception_ptr error_;
  };

 private:
  struct Task {
    std::function<void()> fn;
    Group* group;  // never null (all submission goes through groups)
  };

  /// One worker's deque. `mutex` only guards `tasks`.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t index);

  /// Pops a task: the home deque's back first (LIFO), then steal-half from
  /// the front of the least-recently-tried victim. `home` may be >= the
  /// worker count for external helper threads (they own no deque and only
  /// steal). Returns false when every deque is empty.
  bool TryAcquire(size_t home, Task* out);

  /// Enqueues and wakes a parked worker if any. Called by Group::Run.
  void Enqueue(Task task);

  void Execute(Task task) noexcept;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  size_t num_parked_ = 0;
  bool shutting_down_ = false;

  // Total tasks across all deques; lets the park predicate avoid sweeping
  // every deque under its own lock.
  std::atomic<size_t> num_queued_{0};

  // Round-robin cursor for external submitters / helpers.
  std::atomic<size_t> next_queue_{0};
};

}  // namespace precis

#endif  // PRECIS_COMMON_TASK_POOL_H_
