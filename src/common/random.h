// Deterministic random sources used by the data generator and the benchmarks.
//
// All experiments in the paper average over randomly generated weight sets and
// random seed tuples; reproducibility of those experiments requires every
// random draw in this codebase to flow through a seeded Rng.

#ifndef PRECIS_COMMON_RANDOM_H_
#define PRECIS_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace precis {

/// \brief Seeded pseudo-random number generator (mt19937_64 based).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  /// Picks a uniformly random element index of a container of size n (n > 0).
  size_t Index(size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[Index(i + 1)]);
    }
  }

  /// Samples k distinct indices from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// \brief Zipf-distributed sampler over ranks {0, ..., n-1}.
///
/// Rank r is drawn with probability proportional to 1/(r+1)^s. Used to give
/// the synthetic movies dataset realistically skewed join fan-outs (a few
/// prolific directors/actors, a long tail).
class ZipfSampler {
 public:
  /// \param n number of ranks; must be >= 1.
  /// \param s skew parameter; s = 0 is uniform.
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace precis

#endif  // PRECIS_COMMON_RANDOM_H_
