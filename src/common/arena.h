// Arena: a slab allocator for per-query scratch memory (DESIGN.md §13).
//
// The précis generators allocate many short-lived buffers per query —
// accepted-tid snapshots, projection buffers, chunk outputs — whose
// lifetimes all end together when the query finishes. An Arena serves
// them from large slabs with a bump pointer and frees everything
// wholesale, so the hot path never pays per-buffer malloc/free and the
// allocator never fragments. ExecutionContext owns one per query
// (freed at context teardown); generators running without a context
// create a local one per Generate call.
//
// Thread-safety: Allocate/Reset/stats are internally locked. Chunk
// materialization tasks allocate their output buffers from the query's
// arena concurrently with the planner thread, but only at chunk
// granularity (hundreds of tuples per allocation), so the mutex is not
// a contention point. Memory handed out is exclusively owned by the
// caller until Reset()/destruction.

#ifndef PRECIS_COMMON_ARENA_H_
#define PRECIS_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <vector>

namespace precis {

/// \brief Counters describing an arena's footprint. `peak_used_bytes`
/// survives Reset() so a per-query arena can report its high-water mark
/// at teardown (exported through PrecisService::metrics()).
struct ArenaStats {
  uint64_t slabs = 0;           // live slabs
  uint64_t reserved_bytes = 0;  // sum of live slab sizes
  uint64_t used_bytes = 0;      // bytes handed out since the last Reset
  uint64_t peak_used_bytes = 0; // max used_bytes ever observed
  uint64_t resets = 0;          // wholesale frees performed
};

/// \brief Slab allocator with wholesale reset.
class Arena {
 public:
  static constexpr size_t kDefaultSlabBytes = 64 * 1024;

  explicit Arena(size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes < 1024 ? 1024 : slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never returns nullptr (allocation failure throws std::bad_alloc,
  /// like the global allocator it replaces). Zero-byte requests return a
  /// unique non-null pointer, matching operator new semantics.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    std::lock_guard<std::mutex> lock(mu_);
    return AllocateLocked(bytes == 0 ? 1 : bytes, align);
  }

  /// Typed array of `n` elements, aligned for T. The caller constructs
  /// the elements (placement new or assignment); the arena never runs
  /// destructors, so only trivially destructible element types may be
  /// stored across Reset boundaries.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is freed without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Frees every slab at once. All memory previously handed out becomes
  /// invalid. Statistics keep the peak across resets.
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    slabs_.clear();
    current_ = nullptr;
    current_end_ = nullptr;
    used_ = 0;
    reserved_ = 0;
    ++resets_;
  }

  ArenaStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    ArenaStats s;
    s.slabs = slabs_.size();
    s.reserved_bytes = reserved_;
    s.used_bytes = used_;
    s.peak_used_bytes = peak_used_;
    s.resets = resets_;
    return s;
  }

 private:
  void* AllocateLocked(size_t bytes, size_t align) {
    uintptr_t p = reinterpret_cast<uintptr_t>(current_);
    uintptr_t aligned = (p + (align - 1)) & ~uintptr_t(align - 1);
    if (current_ == nullptr || aligned + bytes > reinterpret_cast<uintptr_t>(current_end_)) {
      // New slab: doubled beyond the default for oversize requests so a
      // single big projection buffer does not strand a whole slab.
      size_t want = bytes + align;
      size_t slab_size = want > slab_bytes_ ? want : slab_bytes_;
      slabs_.push_back(std::make_unique<unsigned char[]>(slab_size));
      current_ = slabs_.back().get();
      current_end_ = current_ + slab_size;
      reserved_ += slab_size;
      p = reinterpret_cast<uintptr_t>(current_);
      aligned = (p + (align - 1)) & ~uintptr_t(align - 1);
    }
    current_ = reinterpret_cast<unsigned char*>(aligned + bytes);
    used_ += bytes + (aligned - p);
    if (used_ > peak_used_) peak_used_ = used_;
    return reinterpret_cast<void*>(aligned);
  }

  const size_t slab_bytes_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
  unsigned char* current_ = nullptr;
  unsigned char* current_end_ = nullptr;
  uint64_t used_ = 0;
  uint64_t reserved_ = 0;
  uint64_t peak_used_ = 0;
  uint64_t resets_ = 0;
};

/// \brief Minimal STL allocator over an Arena, for scratch containers
/// whose lifetime ends with the query (`ArenaVector<Tid>` and friends).
/// Deallocate is a no-op — memory returns in the wholesale Reset.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) { return arena_->AllocateArray<T>(n); }
  void deallocate(T*, size_t) {}  // freed wholesale by Arena::Reset

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& o) const { return arena_ == o.arena_; }
  bool operator!=(const ArenaAllocator& o) const { return arena_ != o.arena_; }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace precis

#endif  // PRECIS_COMMON_ARENA_H_
