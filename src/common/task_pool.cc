#include "common/task_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace precis {

namespace {

/// Per-thread pool affinity: which pool's worker this thread is (if any),
/// its deque index, and how many task frames deep it currently is.
struct ThreadState {
  TaskPool* pool = nullptr;
  size_t index = 0;
  int depth = 0;
};

thread_local ThreadState tls;

/// Beyond this many nested task frames, Group::Run executes inline and
/// Group::Wait stops helping (blocks instead). Ordinary fan-out is 2-3
/// frames deep; the cap only exists to bound pathological recursion.
constexpr int kInlineDepthCap = 96;

size_t SharedPoolSize() {
  const char* env = std::getenv("PRECIS_TASK_POOL_THREADS");
  if (env != nullptr) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(2, hw);
}

}  // namespace

TaskPool::TaskPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() { Shutdown(); }

void TaskPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    shutting_down_ = true;
  }
  park_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

TaskPool* TaskPool::Shared() {
  // Intentionally leaked: the shared pool must outlive every
  // statically-destroyed user (services, caches, test fixtures).
  static TaskPool* pool = new TaskPool(SharedPoolSize());
  return pool;
}

void TaskPool::WorkerLoop(size_t index) {
  tls.pool = this;
  tls.index = index;
  for (;;) {
    Task task;
    if (TryAcquire(index, &task)) {
      Execute(std::move(task));
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mutex_);
    if (shutting_down_) {
      // Drain: only exit once every deque is verifiably empty. A final
      // TryAcquire outside the lock rechecks; tasks submitted during
      // shutdown (nested fan-out of in-flight work) still run.
      lock.unlock();
      if (TryAcquire(index, &task)) {
        Execute(std::move(task));
        continue;
      }
      return;
    }
    ++num_parked_;
    park_cv_.wait(lock, [this] {
      return shutting_down_ || num_queued_.load(std::memory_order_acquire) > 0;
    });
    --num_parked_;
  }
}

bool TaskPool::TryAcquire(size_t home, Task* out) {
  const size_t n = queues_.size();
  // Own deque: LIFO (back).
  if (home < n) {
    WorkerQueue& own = *queues_[home];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.back());
      own.tasks.pop_back();
      num_queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // Steal sweep: FIFO (front) from each victim in rotation; take half.
  size_t start = next_queue_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    size_t v = (start + i) % n;
    if (v == home) continue;
    std::vector<Task> stolen;
    {
      WorkerQueue& victim = *queues_[v];
      std::lock_guard<std::mutex> lock(victim.mutex);
      size_t avail = victim.tasks.size();
      if (avail == 0) continue;
      // Steal half (at least one); external helpers (home >= n) have no
      // deque to park the surplus in, so they take exactly one.
      size_t take = home < n ? (avail + 1) / 2 : 1;
      stolen.reserve(take);
      for (size_t k = 0; k < take; ++k) {
        stolen.push_back(std::move(victim.tasks.front()));
        victim.tasks.pop_front();
      }
    }
    *out = std::move(stolen.front());
    num_queued_.fetch_sub(1, std::memory_order_acq_rel);
    if (stolen.size() > 1) {
      // Re-home the surplus to our own deque (oldest stays oldest).
      WorkerQueue& own = *queues_[home];
      std::lock_guard<std::mutex> lock(own.mutex);
      for (size_t k = stolen.size(); k > 1; --k) {
        own.tasks.push_front(std::move(stolen[k - 1]));
      }
    }
    return true;
  }
  return false;
}

void TaskPool::Enqueue(Task task) {
  size_t target;
  if (tls.pool == this) {
    target = tls.index;  // worker thread: own deque (LIFO locality)
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    WorkerQueue& queue = *queues_[target];
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  num_queued_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    if (num_parked_ == 0) return;
  }
  park_cv_.notify_one();
}

void TaskPool::Execute(Task task) noexcept {
  ++tls.depth;
  try {
    task.fn();
  } catch (...) {
    task.group->CaptureException();
  }
  --tls.depth;
  task.group->TaskDone();
}

// --- Group --------------------------------------------------------------

TaskPool::Group::~Group() {
  try {
    Wait();
  } catch (...) {
    // Destructor swallows; callers who care call Wait() themselves.
  }
}

void TaskPool::Group::Run(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  if (tls.depth >= kInlineDepthCap) {
    // Depth-capped inline execution: a pathologically deep fan-out runs
    // its children synchronously instead of flooding the queues (and
    // instead of risking every worker blocking in Wait on work that only
    // queued deeper).
    Task task{std::move(fn), this};
    pool_->Execute(std::move(task));
    return;
  }
  pool_->Enqueue(Task{std::move(fn), this});
}

void TaskPool::Group::Wait() {
  const size_t helper_home =
      tls.pool == pool_ ? tls.index : pool_->queues_.size();
  for (;;) {
    if (pending_.load(std::memory_order_acquire) == 0) break;
    if (tls.depth < kInlineDepthCap) {
      Task task;
      if (pool_->TryAcquire(helper_home, &task)) {
        // Help: execute pool work (not necessarily ours — any progress
        // eventually drains this group too) instead of sleeping.
        pool_->Execute(std::move(task));
        continue;
      }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (pending_.load(std::memory_order_acquire) == 0) break;
    // Timed wait: queues were empty a moment ago, but an in-flight task
    // may fan out new work this thread could help with.
    done_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void TaskPool::Group::TaskDone() noexcept {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Notify under the mutex so a waiter between its pending check and
    // cv wait cannot miss the signal.
    std::lock_guard<std::mutex> lock(mutex_);
    done_cv_.notify_all();
  }
}

void TaskPool::Group::CaptureException() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  if (error_ == nullptr) error_ = std::current_exception();
}

}  // namespace precis
