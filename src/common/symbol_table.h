// SymbolTable: a process-wide string interner (DESIGN.md §13).
//
// Every string the engine stores or compares — attribute values, index
// keys, tokenizer words, inverted-index postings — is interned once into
// this table and referred to by a stable 32-bit SymbolId afterwards.
// That buys the hot paths three things:
//
//   * equality of interned strings is id equality (one integer compare
//     instead of a byte scan) — the property the open-addressing value
//     indexes and the inverted index are keyed on;
//   * the std::hash of the bytes is computed exactly once, at intern
//     time, and memoized per symbol, so Value::Hash() on a string is a
//     table load (and produces byte-identical hash values to the old
//     per-call std::hash<std::string>, keeping every unordered-container
//     behaviour unchanged);
//   * copying a string value is copying 4 bytes — tuple projection and
//     chunk materialization stop calling malloc per string cell.
//
// Storage is slab-backed: symbols live in fixed-size blocks that are
// allocated under the shard lock and published with a release store, so
// readers resolve ids wait-free (str()/hash() take no lock). Ids are
// dense per shard and encode their shard in the low bits. The table is
// append-only for the process lifetime — the précis engine never
// deletes strings, and an interner that frees would invalidate ids held
// by live Values.
//
// Thread-safety: Intern is sharded-locked (16 shards); str(), hash()
// and stats() are lock-free. An id obtained from any synchronized
// channel may be resolved from any thread.

#ifndef PRECIS_COMMON_SYMBOL_TABLE_H_
#define PRECIS_COMMON_SYMBOL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace precis {

/// Stable identifier of an interned string. Equal ids <=> equal bytes.
using SymbolId = uint32_t;

/// \brief Footprint counters, exported through PrecisService::metrics()
/// and the shell `stats` command.
struct SymbolTableStats {
  uint64_t symbols = 0;      // distinct interned strings
  uint64_t bytes = 0;        // sum of interned string lengths
  uint64_t blocks = 0;       // storage slabs allocated
  uint64_t interns = 0;      // Intern() calls (hits + misses)
};

class SymbolTable {
 public:
  /// The process-wide table every Value and index uses. Leaked
  /// singleton (like TaskPool::Shared()) so ids outlive static
  /// destruction order.
  static SymbolTable* Global();

  SymbolTable();
  ~SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id of `s`, interning it first if unseen.
  SymbolId Intern(std::string_view s);

  /// The interned bytes of `id`. The reference is stable for the table's
  /// lifetime. Wait-free.
  const std::string& str(SymbolId id) const;

  /// Memoized std::hash<std::string> of the interned bytes. Wait-free.
  size_t hash(SymbolId id) const;

  SymbolTableStats stats() const;

 private:
  static constexpr uint32_t kNumShards = 16;       // power of two
  static constexpr uint32_t kBlockSize = 1024;     // symbols per slab
  static constexpr uint32_t kMaxBlocks = 1 << 14;  // 16M symbols/shard cap

  struct Slot {
    std::string str;
    size_t hash = 0;
  };
  struct Block {
    Slot slots[kBlockSize];
  };
  struct Shard;

  std::unique_ptr<Shard[]> shards_;
};

}  // namespace precis

#endif  // PRECIS_COMMON_SYMBOL_TABLE_H_
