#include "common/execution_context.h"

#include <cmath>

namespace precis {

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadlineExceeded:
      return "deadline exceeded";
    case StopReason::kAccessBudgetExhausted:
      return "access budget exhausted";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

void ExecutionContext::SetDeadlineAfter(double seconds) {
  if (seconds <= 0.0) {
    ClearDeadline();
    return;
  }
  SetDeadline(Clock::now() +
              std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds)));
}

std::optional<double> ExecutionContext::RemainingSeconds() const {
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == kNoDeadline) return std::nullopt;
  int64_t now = Clock::now().time_since_epoch().count();
  return std::chrono::duration<double>(Clock::duration(deadline - now))
      .count();
}

Status ExecutionContext::SetBudgetFromResponseTime(
    const CostParameters& params, double cost_m_seconds) {
  if (cost_m_seconds < 0.0) {
    return Status::InvalidArgument("response-time target must be >= 0");
  }
  double per_tuple = params.PerTupleCost();
  if (per_tuple <= 0.0) {
    return Status::InvalidArgument(
        "cost parameters must have positive per-tuple cost");
  }
  // Formula 3: the target buys cost_m / (IndexTime + TupleTime) tuples;
  // each costs one probe + one fetch here.
  double tuples = std::floor(cost_m_seconds / per_tuple);
  SetAccessBudget(static_cast<uint64_t>(tuples) * 2);
  return Status::OK();
}

bool ExecutionContext::ShouldStop() const {
  if (stop_reason() != StopReason::kNone) return true;
  if (cancelled_.load(std::memory_order_relaxed)) {
    LatchStop(StopReason::kCancelled);
    return true;
  }
  uint64_t budget = access_budget_.load(std::memory_order_relaxed);
  if (budget != 0 && accesses_charged() >= budget) {
    LatchStop(StopReason::kAccessBudgetExhausted);
    return true;
  }
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != kNoDeadline &&
      Clock::now().time_since_epoch().count() >= deadline) {
    LatchStop(StopReason::kDeadlineExceeded);
    return true;
  }
  return false;
}

void ExecutionContext::LatchStop(StopReason reason) const {
  uint8_t expected = 0;
  stop_reason_.compare_exchange_strong(
      expected, static_cast<uint8_t>(reason), std::memory_order_relaxed);
}

std::vector<TraceSpan> ExecutionContext::spans() const {
  std::lock_guard<std::mutex> lock(spans_mutex_);
  return spans_;
}

void ExecutionContext::RecordSpan(TraceSpan span) {
  std::lock_guard<std::mutex> lock(spans_mutex_);
  spans_.push_back(std::move(span));
}

ScopedSpan::ScopedSpan(ExecutionContext* ctx, std::string name)
    : ctx_(ctx), name_(std::move(name)) {
  if (ctx_ == nullptr) return;
  start_ = ExecutionContext::Clock::now();
  const AccessStats& s = ctx_->stats();
  index_probes_ = s.index_probes.load(std::memory_order_relaxed);
  tuple_fetches_ = s.tuple_fetches.load(std::memory_order_relaxed);
  sequential_scans_ = s.sequential_scans.load(std::memory_order_relaxed);
  statements_ = s.statements.load(std::memory_order_relaxed);
}

void ScopedSpan::Close() {
  if (ctx_ == nullptr) return;
  TraceSpan span;
  span.name = std::move(name_);
  span.seconds = std::chrono::duration<double>(
                     ExecutionContext::Clock::now() - start_)
                     .count();
  const AccessStats& s = ctx_->stats();
  span.index_probes =
      s.index_probes.load(std::memory_order_relaxed) - index_probes_;
  span.tuple_fetches =
      s.tuple_fetches.load(std::memory_order_relaxed) - tuple_fetches_;
  span.sequential_scans =
      s.sequential_scans.load(std::memory_order_relaxed) - sequential_scans_;
  span.statements =
      s.statements.load(std::memory_order_relaxed) - statements_;
  ctx_->RecordSpan(std::move(span));
  ctx_ = nullptr;
}

}  // namespace precis
