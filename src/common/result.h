// Result<T>: a value or an error Status (Arrow-style).

#ifndef PRECIS_COMMON_RESULT_H_
#define PRECIS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace precis {

/// \brief Holds either a successfully computed T or the Status explaining why
/// it could not be computed.
///
/// Usage:
/// \code
///   Result<int> r = Parse(text);
///   if (!r.ok()) return r.status();
///   int v = *r;
/// \endcode
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value)  // NOLINT(google-explicit-constructor): mirrors Arrow.
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Failure. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access; undefined behaviour if !ok().
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return std::move(*value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    if (ok()) return std::move(*value_);
    return alternative;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace precis

/// Propagates the error of a Result expression, else assigns its value.
#define PRECIS_ASSIGN_OR_RETURN(lhs, expr)        \
  auto PRECIS_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!PRECIS_CONCAT_(_res_, __LINE__).ok())      \
    return PRECIS_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(*PRECIS_CONCAT_(_res_, __LINE__))

#define PRECIS_CONCAT_IMPL_(a, b) a##b
#define PRECIS_CONCAT_(a, b) PRECIS_CONCAT_IMPL_(a, b)

#endif  // PRECIS_COMMON_RESULT_H_
