#include "common/net_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace precis {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::string(strerror(errno));
}

/// Fills a sockaddr_in for a dotted-quad address (the server binds and the
/// bench connects to loopback; hostname resolution is out of scope).
Result<sockaddr_in> MakeAddr(const std::string& address, uint16_t port) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: '" + address + "'");
  }
  return addr;
}

}  // namespace

Result<int> ListenTcp(const std::string& address, uint16_t port,
                      int backlog) {
  auto addr = MakeAddr(address, port);
  if (!addr.ok()) return addr.status();
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) !=
      0) {
    Status st = Status::Unavailable(Errno("bind " + address + ":" +
                                          std::to_string(port)));
    CloseFd(fd);
    return st;
  }
  if (listen(fd, backlog) != 0) {
    Status st = Status::Internal(Errno("listen"));
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& address, uint16_t port) {
  auto addr = MakeAddr(address, port);
  if (!addr.ok()) return addr.status();
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&*addr),
                 sizeof(*addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    Status st = Status::Unavailable(Errno("connect " + address + ":" +
                                          std::to_string(port)));
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::Internal(Errno("getsockname"));
  }
  return ntohs(addr.sin_port);
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(Errno("fcntl O_NONBLOCK"));
  }
  return Status::OK();
}

Status SetTcpNoDelay(int fd) {
  int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Status::Internal(Errno("setsockopt TCP_NODELAY"));
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = close(fd);
  } while (rc != 0 && errno == EINTR);
}

Status WriteAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that reset the connection must surface as EPIPE,
    // not a process-killing SIGPIPE — test binaries never install the
    // SIG_IGN the daemons do (InstallShutdownHandler).
    ssize_t n = send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("write"));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

WakeupPipe::WakeupPipe() {
  if (pipe(fds_) != 0) {
    std::fprintf(stderr, "pipe: %s\n", strerror(errno));
    std::abort();
  }
  // Both ends non-blocking: Notify must never block a signal handler or a
  // service worker, Drain must never block the poll loop.
  for (int fd : fds_) {
    int flags = fcntl(fd, F_GETFL, 0);
    (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

WakeupPipe::~WakeupPipe() {
  CloseFd(fds_[0]);
  CloseFd(fds_[1]);
}

void WakeupPipe::Notify() {
  char byte = 1;
  // A full pipe already guarantees the reader will wake; EAGAIN is success.
  ssize_t rc;
  do {
    rc = write(fds_[1], &byte, 1);
  } while (rc < 0 && errno == EINTR);
}

void WakeupPipe::Drain() {
  char buf[64];
  while (read(fds_[0], buf, sizeof(buf)) > 0) {
  }
}

namespace {

std::atomic<bool> g_shutdown_requested{false};

WakeupPipe* ShutdownPipe() {
  // Leaked on purpose: the signal handler may fire during static
  // destruction; a destroyed pipe there would be use-after-free.
  static WakeupPipe* pipe = new WakeupPipe();
  return pipe;
}

void HandleShutdownSignal(int signo) {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
  ShutdownPipe()->Notify();
  // Second signal: give up on graceful teardown. Restore the default
  // disposition so repeating Ctrl-C (or a second SIGTERM) kills for real.
  struct sigaction dfl;
  memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  (void)sigaction(signo, &dfl, nullptr);
}

}  // namespace

void InstallShutdownHandler() {
  ShutdownPipe();  // create the pipe before any signal can arrive
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking reads return EINTR
  (void)sigaction(SIGINT, &sa, nullptr);
  (void)sigaction(SIGTERM, &sa, nullptr);
  // A peer that goes away mid-write must surface as a write error, not a
  // process-killing SIGPIPE.
  signal(SIGPIPE, SIG_IGN);
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_relaxed);
}

int ShutdownWakeupFd() { return ShutdownPipe()->read_fd(); }

void ResetShutdownForTesting() {
  g_shutdown_requested.store(false, std::memory_order_relaxed);
  ShutdownPipe()->Drain();
}

}  // namespace precis
