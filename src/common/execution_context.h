// ExecutionContext: per-query deadline, budget, attribution and tracing.
//
// The paper's cost model (§6) exists to bound per-query work: Formula 3
// derives a cardinality constraint from a response-time target. This class
// is the runtime half of that idea — a handle created per query and threaded
// through every pipeline layer (sql, storage, generators, engine,
// translator) so that one query among many concurrent ones can be
//
//   * attributed: every index probe / tuple fetch / statement it causes is
//     counted into its own AccessStats (in addition to the Database's
//     global, cross-query counters);
//   * bounded: an access budget (max instrumented accesses, derivable from
//     CostParameters via Formula 3) and a wall-clock deadline stop the
//     generators early — they return the partial, well-formed answer built
//     so far;
//   * cancelled: a cooperative flag another thread may set;
//   * traced: named spans record wall-clock duration and counter deltas per
//     pipeline stage.
//
// Thread-safety: one context belongs to one query, but Cancel() and the
// read accessors may be called from other threads (a service watchdog, a
// metrics scraper); all mutable state is atomic or mutex-guarded.

#ifndef PRECIS_COMMON_EXECUTION_CONTEXT_H_
#define PRECIS_COMMON_EXECUTION_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "storage/access_stats.h"

namespace precis {

/// \brief Why a query's pipeline stopped before completing.
enum class StopReason : uint8_t {
  kNone = 0,
  kDeadlineExceeded = 1,
  kAccessBudgetExhausted = 2,
  kCancelled = 3,
};

const char* StopReasonToString(StopReason reason);

/// \brief One recorded pipeline stage: name, wall-clock duration, and the
/// access-counter deltas incurred while the span was open.
struct TraceSpan {
  std::string name;
  double seconds = 0.0;
  uint64_t index_probes = 0;
  uint64_t tuple_fetches = 0;
  uint64_t sequential_scans = 0;
  uint64_t statements = 0;
};

/// \brief Per-query execution state threaded through the pipeline.
class ExecutionContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecutionContext() = default;
  // Its address is handed out across layers (and possibly threads);
  // neither copyable nor movable.
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  // --- Deadline -----------------------------------------------------------

  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  /// Deadline `seconds` from now; <= 0 clears it.
  void SetDeadlineAfter(double seconds);
  void ClearDeadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }
  /// Seconds until the deadline (negative if past); nullopt if none set.
  std::optional<double> RemainingSeconds() const;

  // --- Access budget ------------------------------------------------------

  /// Caps the number of instrumented accesses (index probes + tuple fetches
  /// + sequential scans) this query may perform. 0 means unbounded.
  void SetAccessBudget(uint64_t max_accesses) {
    access_budget_.store(max_accesses, std::memory_order_relaxed);
  }

  /// Derives the access budget from a response-time target via the paper's
  /// Formula 3: the target buys cost_m / (IndexTime + TupleTime) tuples,
  /// and each tuple costs one index probe plus one tuple fetch in this
  /// engine's instrumentation, so the budget is twice that count.
  Status SetBudgetFromResponseTime(const CostParameters& params,
                                   double cost_m_seconds);

  uint64_t access_budget() const {
    return access_budget_.load(std::memory_order_relaxed);
  }
  /// Instrumented accesses charged so far: the sum of the three budgeted
  /// stat counters. Derived rather than stored so every Charge* is exactly
  /// one relaxed fetch_add — the counters are what concurrent subtree
  /// expansion hammers, and a second "budget" counter per charge would
  /// double the contention for no information.
  uint64_t accesses_charged() const {
    return stats_.index_probes.load(std::memory_order_relaxed) +
           stats_.tuple_fetches.load(std::memory_order_relaxed) +
           stats_.sequential_scans.load(std::memory_order_relaxed);
  }

  // --- Cooperative cancellation -------------------------------------------

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // --- Combined stop check (the generators' hot-path call) ----------------

  /// True once the query should stop doing new work: cancelled, past the
  /// deadline, or out of access budget. The first observed cause is latched
  /// as stop_reason() and never overwritten.
  bool ShouldStop() const;

  StopReason stop_reason() const {
    return static_cast<StopReason>(
        stop_reason_.load(std::memory_order_relaxed));
  }

  /// Latches `reason` as the stop reason if none is set yet. Public so a
  /// deterministic planner can charge budget against a *simulated* access
  /// sequence and latch kAccessBudgetExhausted itself; the latch is
  /// monotone — the first reason wins and is never overwritten, so a stop
  /// observed by one worker stops all.
  void LatchStop(StopReason reason) const;

  // --- Accounting (called by the storage layer) ---------------------------

  // Each charge is a single relaxed fetch_add on its own counter (no
  // mutex, no shadow budget counter) so concurrent subtree expansion does
  // not serialize on accounting.
  void ChargeIndexProbe() {
    stats_.index_probes.fetch_add(1, std::memory_order_relaxed);
  }
  void ChargeTupleFetch() {
    stats_.tuple_fetches.fetch_add(1, std::memory_order_relaxed);
  }
  /// Bulk variant used by the columnar fetch+project kernel: one relaxed
  /// fetch_add for a whole chunk. Indistinguishable from n single charges
  /// (charging has no per-call side effect beyond the counter).
  void ChargeTupleFetches(uint64_t n) {
    stats_.tuple_fetches.fetch_add(n, std::memory_order_relaxed);
  }
  void ChargeSequentialScan() {
    stats_.sequential_scans.fetch_add(1, std::memory_order_relaxed);
  }
  /// Statements carry no I/O of their own in the cost model (Formula 1);
  /// they are attributed but not charged against the budget.
  void ChargeStatement() {
    stats_.statements.fetch_add(1, std::memory_order_relaxed);
  }

  /// This query's own access counters.
  const AccessStats& stats() const { return stats_; }

  // --- Per-query arena (DESIGN.md §13) ------------------------------------

  /// Scratch arena whose lifetime is this query: the generators draw tid
  /// snapshots, projection buffers and chunk outputs from it, and the
  /// whole pool is freed at context teardown (or explicitly via
  /// arena().Reset()). Internally locked, so chunk tasks on pool threads
  /// may allocate concurrently with the planner.
  Arena& arena() { return arena_; }
  ArenaStats arena_stats() const { return arena_.stats(); }

  // --- Fault injection (DESIGN.md §12) ------------------------------------

  /// Attaches a fault injector. Not owned; must outlive the query. Set
  /// before the query starts (same single-writer contract as the deadline
  /// and budget setters) — the storage and sql layers read it on the hot
  /// path without synchronization.
  void SetFaultInjector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

  /// One fault decision at `site`. OK when no injector is attached.
  Status CheckFault(FaultSite site) const {
    return fault_injector_ != nullptr ? fault_injector_->Check(site)
                                      : Status::OK();
  }

  /// Backoff parameters used by the retry wrappers (common/retry.h).
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  // --- Trace spans --------------------------------------------------------

  /// Spans recorded so far, in completion order (snapshot).
  std::vector<TraceSpan> spans() const;

 private:
  friend class ScopedSpan;

  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  void RecordSpan(TraceSpan span);

  AccessStats stats_;
  Arena arena_;
  FaultInjector* fault_injector_ = nullptr;  // not owned
  RetryPolicy retry_policy_;
  std::atomic<uint64_t> access_budget_{0};  // 0 = unbounded
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  std::atomic<bool> cancelled_{false};
  // Latched by ShouldStop(), which is logically const.
  mutable std::atomic<uint8_t> stop_reason_{0};

  mutable std::mutex spans_mutex_;
  std::vector<TraceSpan> spans_;
};

/// \brief RAII trace span. Inert when constructed with a null context, so
/// pipeline stages can write `ScopedSpan span(ctx, "db_gen");`
/// unconditionally.
class ScopedSpan {
 public:
  ScopedSpan(ExecutionContext* ctx, std::string name);
  ~ScopedSpan() { Close(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records the span now instead of at destruction (idempotent).
  void Close();

 private:
  ExecutionContext* ctx_;
  std::string name_;
  ExecutionContext::Clock::time_point start_;
  // Counter snapshot at open, for the delta.
  uint64_t index_probes_;
  uint64_t tuple_fetches_;
  uint64_t sequential_scans_;
  uint64_t statements_;
};

}  // namespace precis

#endif  // PRECIS_COMMON_EXECUTION_CONTEXT_H_
