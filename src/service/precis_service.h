// PrecisService: a concurrent front end for PrecisEngine.
//
// The paper frames précis queries as an end-user database feature ("a précis
// of Woody Allen" on a movie site), which implies many queries in flight at
// once, each with a bounded response time (§6's cost model exists exactly to
// bound per-query work). This service supplies that operational layer: a
// fixed-size worker pool executes submitted queries, each under its own
// ExecutionContext carrying the deadline / access budget derived from the
// service defaults or per-request overrides, and the service aggregates
// metrics (throughput, deadline hits, budget truncations, latency
// percentiles, per-stage span totals) across all queries it served.

#ifndef PRECIS_SERVICE_PRECIS_SERVICE_H_
#define PRECIS_SERVICE_PRECIS_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/execution_context.h"
#include "common/result.h"
#include "common/symbol_table.h"
#include "precis/engine.h"

namespace precis {

/// \brief One précis query plus its execution knobs. The constraint fields
/// mirror the paper's Tables 1 and 2 in scalar form so a request is a plain
/// value (copyable, queueable) rather than a bag of constraint objects.
struct ServiceRequest {
  PrecisQuery query;

  /// Degree constraint: keep projection paths of weight >= min_path_weight
  /// (Table 1, row 2); additionally cap the number of projections when
  /// max_projections > 0 (Table 1, row 1).
  double min_path_weight = 0.0;
  size_t max_projections = 0;  // 0 = no bound

  /// Cardinality constraint: max tuples per result relation (Table 2,
  /// row 2); 0 = unlimited.
  size_t tuples_per_relation = 0;

  DbGenOptions options;

  /// Per-request overrides of the service defaults; 0 means "use default".
  double deadline_seconds = 0.0;
  uint64_t access_budget = 0;

  /// When true, the worker also produces ServiceResponse::body_json (the
  /// memoized AnswerToJson rendering, DESIGN.md §16) so transport layers
  /// can serve the bytes without re-rendering. Off by default: embedded
  /// callers that only inspect the answer skip the serialization cost.
  bool render_body = false;
};

/// \brief Outcome of one serviced query.
struct ServiceResponse {
  Status status;
  /// Non-null iff status.ok(). Shared and immutable so that a full-answer
  /// cache hit (engine cache enabled) hands every requester the same stored
  /// answer without copying its result database.
  std::shared_ptr<const PrecisAnswer> answer;
  /// Non-null iff status.ok() and the request set render_body: exactly
  /// AnswerToJson(*answer), shared so the transport can write it to the
  /// wire with zero copies (memoized across requests by the engine's body
  /// cache when enabled).
  std::shared_ptr<const std::string> body_json;
  /// The query's own access counters (its ExecutionContext's stats).
  AccessStats stats;
  /// Why the pipeline stopped early, kNone for a complete answer.
  StopReason stop_reason = StopReason::kNone;
  double latency_seconds = 0.0;
  /// Per-stage trace spans ("match_tokens", "schema_gen", "db_gen").
  std::vector<TraceSpan> spans;

  /// Fault-degradation summary (DESIGN.md §12), copied from the answer's
  /// DbGenReport: true when injected faults cost the answer tuples or
  /// lookups. The answer remains structurally well-formed.
  bool degraded = false;
  /// Retries performed against transient faults (successful or not).
  uint64_t retries = 0;
  /// Tuples lost to exhausted retries.
  uint64_t dropped_tuples = 0;
  /// High-water mark of the query's arena (DESIGN.md §13): scratch bytes
  /// the generator pipeline bump-allocated for this query and freed
  /// wholesale at context teardown.
  uint64_t arena_peak_bytes = 0;

  bool partial() const { return stop_reason != StopReason::kNone; }
};

/// \brief Executes précis queries on a fixed-size worker pool.
class PrecisService {
 public:
  struct Options {
    /// Worker threads; clamped to >= 1.
    size_t num_workers = 4;
    /// Default wall-clock deadline per query; 0 = none.
    double default_deadline_seconds = 0.0;
    /// Default access budget per query; 0 = unbounded. Ignored when
    /// response_time_target_seconds is set.
    uint64_t default_access_budget = 0;
    /// When > 0, the default access budget is derived from this target via
    /// the paper's Formula 3 using cost_params (which must then have a
    /// positive per-tuple cost).
    double response_time_target_seconds = 0.0;
    CostParameters cost_params;

    /// Default intra-query parallelism (DbGenOptions::parallelism) applied
    /// to requests that leave options.parallelism at its default (<= 1):
    /// >= 2 runs cold database generation on the process-wide shared
    /// TaskPool (DESIGN.md §11). One pool serves all workers, so `service
    /// workers x per-query chunk tasks` cannot oversubscribe the machine.
    /// 0 (default) leaves requests untouched.
    size_t dbgen_parallelism = 0;

    /// Admission-queue bound (load shedding, DESIGN.md §12). When > 0, a
    /// Submit that would make the queue deeper than this is rejected
    /// immediately with a typed Status::Overloaded response instead of
    /// queueing unboundedly — the load-shedding discipline keyword-search
    /// services use under overload. 0 (default) = unbounded queue.
    size_t max_queue_depth = 0;

    /// Fault injector attached to every query's ExecutionContext (chaos
    /// testing / fault drills); not owned, must outlive the service.
    /// nullptr (default) disables fault checks entirely.
    FaultInjector* fault_injector = nullptr;

    /// Backoff parameters for transient-fault retries in the layers below.
    RetryPolicy retry_policy;
  };

  /// Per-shard serving counters (ShardedPrecisService only; the plain
  /// service reports an empty vector).
  struct ShardMetricsEntry {
    /// Physical sub-operations dispatched to the shard (edge prefetches +
    /// chunk materializations) across all served queries.
    uint64_t subqueries = 0;
    /// Physical charges on the shard (lookups + tuple fetches).
    uint64_t charges = 0;
    /// Tuples currently resident on the shard.
    uint64_t tuples = 0;
    /// Largest single-edge prefetch scratch buffer held for the shard
    /// across all served queries (the sharded analog of the arena peak).
    uint64_t scratch_peak_bytes = 0;
    /// The shard's partial-results (token occurrence) cache counters.
    LruCacheStats token_cache;
    /// The shard's circuit-breaker snapshot (DESIGN.md §17): state string
    /// ("closed"/"open"/"half_open") plus lifetime transition counters.
    /// All-default for an unsharded service or a one-shard engine (shard
    /// fault domains only exist at num_shards >= 2).
    std::string breaker_state = "closed";
    uint64_t breaker_opened = 0;
    uint64_t breaker_rejected = 0;
    uint64_t breaker_half_open_probes = 0;
    uint64_t breaker_failures = 0;
  };

  /// Aggregate counters across every query the service has finished.
  struct Metrics {
    uint64_t queries_served = 0;  // completed, OK or not
    uint64_t failures = 0;        // non-OK status
    uint64_t deadline_hits = 0;
    uint64_t budget_truncations = 0;
    uint64_t cancellations = 0;
    /// Requests rejected at admission (Status::Overloaded) because the
    /// queue was at max_queue_depth. Not counted in queries_served.
    uint64_t queries_shed = 0;
    /// Completed queries whose answer lost tuples/lookups to faults.
    uint64_t degraded_answers = 0;
    /// Transient-fault retries across all queries.
    uint64_t retries_total = 0;
    /// Tuples lost to exhausted retries across all queries.
    uint64_t dropped_tuples_total = 0;
    double p50_latency_seconds = 0.0;
    double p99_latency_seconds = 0.0;
    double total_latency_seconds = 0.0;
    /// Sum of every query's per-context AccessStats.
    AccessStats total_stats;
    /// Total seconds spent per pipeline stage, keyed by span name.
    std::map<std::string, double> span_seconds;
    /// Cache counters per level (DESIGN.md §10), snapshotted from the
    /// engine at metrics() time. All-zero when the level is disabled.
    LruCacheStats token_cache;
    LruCacheStats schema_cache;
    LruCacheStats answer_cache;
    /// Rendered-body (serialization) cache, level 4 (DESIGN.md §16).
    LruCacheStats body_cache;
    /// Largest per-query arena high-water mark seen (DESIGN.md §13).
    uint64_t arena_peak_bytes_max = 0;
    /// Sum of every query's arena high-water mark.
    uint64_t arena_peak_bytes_total = 0;
    /// Process-wide string-interner footprint (DESIGN.md §13),
    /// snapshotted from SymbolTable::Global() at metrics() time.
    SymbolTableStats symbol_table;
    /// Sharded serving (DESIGN.md §15): one entry per shard; empty for an
    /// unsharded service.
    std::vector<ShardMetricsEntry> shards;
    /// Percentiles of the per-query scatter-gather merge wall time.
    double shard_merge_p50_seconds = 0.0;
    double shard_merge_p99_seconds = 0.0;
    /// Total charges that exceeded the even per-shard budget slice —
    /// budget effectively rebalanced toward hot shards.
    uint64_t shard_rebalanced_budget_total = 0;
    /// Fault-domain serving totals (DESIGN.md §17), all queries combined:
    /// queries whose merge completed without at least one shard, individual
    /// shard exclusions, kShardSubquery probe retries, breaker fast-fails
    /// (skips without probing), hedged sub-queries launched, and hedges
    /// whose replica beat the primary.
    uint64_t shard_degraded_queries = 0;
    uint64_t shard_skips_total = 0;
    uint64_t shard_probe_retries_total = 0;
    uint64_t shard_breaker_rejects_total = 0;
    uint64_t hedged_subqueries_total = 0;
    uint64_t hedge_wins_total = 0;
  };

  /// `engine` must outlive the service. Workers start immediately.
  static Result<std::unique_ptr<PrecisService>> Create(
      const PrecisEngine* engine, Options options);
  static Result<std::unique_ptr<PrecisService>> Create(
      const PrecisEngine* engine) {
    return Create(engine, Options());
  }

  /// Stops accepting work and joins the workers (equivalent to Shutdown()).
  /// Virtual: ShardedPrecisService derives from this class (it overrides
  /// only the answer hook and the metrics snapshot).
  virtual ~PrecisService();

  PrecisService(const PrecisService&) = delete;
  PrecisService& operator=(const PrecisService&) = delete;

  /// Enqueues one query; the future resolves when a worker finishes it.
  /// After Shutdown() the future resolves immediately with a failed status.
  std::future<ServiceResponse> Submit(ServiceRequest request);

  /// Enqueues one query with a completion callback instead of a future —
  /// the push-notification shape the HTTP front end needs (its poll loops
  /// cannot block on futures). `done` runs exactly once: on a worker
  /// thread after the query finishes, or synchronously on the calling
  /// thread when the request is shed (Status::Overloaded) or the service
  /// is shut down. Callbacks must be fast and must not throw; anything
  /// heavy belongs on the callback receiver's own thread.
  void SubmitAsync(ServiceRequest request,
                   std::function<void(ServiceResponse)> done);

  /// Enqueues a batch atomically (all requests are queued before any worker
  /// sees them), one future per request in order.
  std::vector<std::future<ServiceResponse>> SubmitBatch(
      std::vector<ServiceRequest> requests);

  /// Convenience: Submit and wait.
  ServiceResponse Execute(ServiceRequest request);

  /// Drains queued work, then joins the workers. Idempotent; called by the
  /// destructor.
  void Shutdown();

  /// Snapshot of the aggregate metrics. The copy-out happens under the
  /// stats mutex but the percentile sort runs on the copy *outside* it, so
  /// a metrics scrape over a long latency history cannot stall admission
  /// or workers recording outcomes.
  virtual Metrics metrics() const;

  size_t num_workers() const { return workers_.size(); }

 protected:
  /// `engine` may be null only for subclasses that override AnswerQuery()
  /// (and metrics()) to route somewhere else; the base implementations
  /// guard every engine_ dereference. Workers start immediately — safe
  /// against virtual dispatch because no job can be queued before the
  /// subclass factory returns.
  PrecisService(const PrecisEngine* engine, Options options);

  /// The one pipeline call RunOne makes. Base: the engine's cached
  /// AnswerShared (the rendered variant when `body_out` is non-null).
  /// ShardedPrecisService overrides this to scatter-gather across its
  /// shard engines; everything else about query execution (context setup,
  /// constraints, metrics recording) stays shared. `body_out` is non-null
  /// exactly when the request asked for render_body; implementations then
  /// fill it with the AnswerToJson bytes of the returned answer.
  virtual Result<std::shared_ptr<const PrecisAnswer>> AnswerQuery(
      const ServiceRequest& request, const DegreeConstraint& degree,
      const CardinalityConstraint& cardinality, const DbGenOptions& options,
      ExecutionContext* ctx, std::shared_ptr<const std::string>* body_out);

  /// Copies the aggregate counters + latency history under metrics_mutex_,
  /// then computes percentiles and the symbol-table snapshot on the copy
  /// outside the lock. Shared by both metrics() implementations.
  Metrics SnapshotCoreMetrics() const;

  const Options& service_options() const { return options_; }

 private:
  struct Job {
    ServiceRequest request;
    /// Completion continuation (a promise-fulfilling lambda for Submit,
    /// the caller's callback for SubmitAsync). Never null once enqueued.
    std::function<void(ServiceResponse)> done;
  };

  void WorkerLoop();
  ServiceResponse RunOne(const ServiceRequest& request);
  void RecordOutcome(const ServiceResponse& response);

  const PrecisEngine* engine_;
  Options options_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool shutting_down_ = false;

  mutable std::mutex metrics_mutex_;
  Metrics metrics_;
  std::vector<double> latencies_;

  std::vector<std::thread> workers_;
};

}  // namespace precis

#endif  // PRECIS_SERVICE_PRECIS_SERVICE_H_
