#include "service/precis_service.h"

#include <algorithm>
#include <chrono>

#include "precis/constraints.h"

namespace precis {

Result<std::unique_ptr<PrecisService>> PrecisService::Create(
    const PrecisEngine* engine, Options options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must be non-null");
  }
  if (options.response_time_target_seconds > 0 &&
      options.cost_params.PerTupleCost() <= 0) {
    return Status::InvalidArgument(
        "a response-time target needs positive cost parameters "
        "(Formula 3 divides by IndexTime + TupleTime)");
  }
  if (options.num_workers == 0) options.num_workers = 1;
  return std::unique_ptr<PrecisService>(
      new PrecisService(engine, std::move(options)));
}

PrecisService::PrecisService(const PrecisEngine* engine, Options options)
    : engine_(engine), options_(std::move(options)) {
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

PrecisService::~PrecisService() { Shutdown(); }

std::future<ServiceResponse> PrecisService::Submit(ServiceRequest request) {
  auto promise = std::make_shared<std::promise<ServiceResponse>>();
  std::future<ServiceResponse> future = promise->get_future();
  SubmitAsync(std::move(request), [promise](ServiceResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

void PrecisService::SubmitAsync(ServiceRequest request,
                                std::function<void(ServiceResponse)> done) {
  Job job;
  job.request = std::move(request);
  job.done = std::move(done);
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutting_down_) {
      ServiceResponse rejected;
      rejected.status =
          Status::Internal("service is shut down; submission rejected");
      job.done(std::move(rejected));
      return;
    }
    if (options_.max_queue_depth > 0 &&
        queue_.size() >= options_.max_queue_depth) {
      shed = true;
    } else {
      queue_.push_back(std::move(job));
    }
  }
  if (shed) {
    // Load shedding (DESIGN.md §12): fail fast with a typed status rather
    // than letting the queue (and every queued query's latency) grow without
    // bound. The continuation runs outside queue_mutex_ so a caller blocked
    // on the result can't interleave with queue operations.
    ServiceResponse rejected;
    rejected.status = Status::Overloaded(
        "admission queue full (depth " +
        std::to_string(options_.max_queue_depth) + "); request shed");
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++metrics_.queries_shed;
    }
    job.done(std::move(rejected));
    return;
  }
  queue_cv_.notify_one();
}

std::vector<std::future<ServiceResponse>> PrecisService::SubmitBatch(
    std::vector<ServiceRequest> requests) {
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(requests.size());
  std::vector<Job> shed_jobs;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (ServiceRequest& request : requests) {
      Job job;
      job.request = std::move(request);
      auto promise = std::make_shared<std::promise<ServiceResponse>>();
      futures.push_back(promise->get_future());
      job.done = [promise](ServiceResponse response) {
        promise->set_value(std::move(response));
      };
      if (shutting_down_) {
        ServiceResponse rejected;
        rejected.status =
            Status::Internal("service is shut down; submission rejected");
        job.done(std::move(rejected));
      } else if (options_.max_queue_depth > 0 &&
                 queue_.size() >= options_.max_queue_depth) {
        shed_jobs.push_back(std::move(job));
      } else {
        queue_.push_back(std::move(job));
      }
    }
  }
  for (Job& job : shed_jobs) {
    ServiceResponse rejected;
    rejected.status = Status::Overloaded(
        "admission queue full (depth " +
        std::to_string(options_.max_queue_depth) + "); request shed");
    job.done(std::move(rejected));
  }
  if (!shed_jobs.empty()) {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.queries_shed += shed_jobs.size();
  }
  queue_cv_.notify_all();
  return futures;
}

ServiceResponse PrecisService::Execute(ServiceRequest request) {
  return Submit(std::move(request)).get();
}

void PrecisService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void PrecisService::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return shutting_down_ || !queue_.empty(); });
      // Drain the queue even when shutting down: every accepted future
      // must resolve with a real answer.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    ServiceResponse response = RunOne(job.request);
    RecordOutcome(response);
    job.done(std::move(response));
  }
}

ServiceResponse PrecisService::RunOne(const ServiceRequest& request) {
  ExecutionContext ctx;

  double deadline = request.deadline_seconds > 0
                        ? request.deadline_seconds
                        : options_.default_deadline_seconds;
  if (deadline > 0) ctx.SetDeadlineAfter(deadline);

  if (request.access_budget > 0) {
    ctx.SetAccessBudget(request.access_budget);
  } else if (options_.response_time_target_seconds > 0) {
    // Create() validated the cost parameters, so this cannot fail.
    Status derived = ctx.SetBudgetFromResponseTime(
        options_.cost_params, options_.response_time_target_seconds);
    (void)derived;
  } else if (options_.default_access_budget > 0) {
    ctx.SetAccessBudget(options_.default_access_budget);
  }

  // Fault injection (DESIGN.md §12): arm every query's context with the
  // service-wide injector (chaos drills exercise the whole pool, not one
  // query) and the retry policy the layers below consult on transient
  // faults.
  if (options_.fault_injector != nullptr) {
    ctx.SetFaultInjector(options_.fault_injector);
  }
  ctx.set_retry_policy(options_.retry_policy);

  std::vector<std::unique_ptr<DegreeConstraint>> degree_parts;
  degree_parts.push_back(MinPathWeight(request.min_path_weight));
  if (request.max_projections > 0) {
    degree_parts.push_back(MaxProjections(request.max_projections));
  }
  std::unique_ptr<DegreeConstraint> degree =
      degree_parts.size() == 1 ? std::move(degree_parts.front())
                               : AllOf(std::move(degree_parts));
  std::unique_ptr<CardinalityConstraint> cardinality =
      request.tuples_per_relation > 0
          ? MaxTuplesPerRelation(request.tuples_per_relation)
          : UnlimitedCardinality();

  // Apply the service-wide intra-query parallelism default unless the
  // request carries an explicit setting. Output is byte-identical either
  // way (DESIGN.md §11); this only changes cold-generation latency. The
  // shared process-wide pool (DbGenOptions::pool == nullptr) keeps
  // `workers x chunk tasks` from oversubscribing the machine.
  DbGenOptions dbgen_options = request.options;
  if (options_.dbgen_parallelism >= 2 && dbgen_options.parallelism <= 1) {
    dbgen_options.parallelism = options_.dbgen_parallelism;
  }

  ServiceResponse response;
  auto start = ExecutionContext::Clock::now();
  // The base hook routes to the engine's AnswerShared (through its
  // full-answer cache when enabled); ShardedPrecisService overrides it to
  // scatter-gather across its shard engines.
  auto answer =
      AnswerQuery(request, *degree, *cardinality, dbgen_options, &ctx,
                  request.render_body ? &response.body_json : nullptr);
  response.latency_seconds =
      std::chrono::duration<double>(ExecutionContext::Clock::now() - start)
          .count();
  if (answer.ok()) {
    response.answer = std::move(*answer);
    response.degraded = response.answer->report.degraded();
    response.retries = response.answer->report.degradation.total_retries();
    response.dropped_tuples =
        response.answer->report.degradation.total_dropped_tuples();
  } else {
    response.status = answer.status();
  }
  response.stats = ctx.stats();
  response.stop_reason = ctx.stop_reason();
  response.spans = ctx.spans();
  response.arena_peak_bytes = ctx.arena_stats().peak_used_bytes;
  return response;
}

void PrecisService::RecordOutcome(const ServiceResponse& response) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  ++metrics_.queries_served;
  if (!response.status.ok()) ++metrics_.failures;
  switch (response.stop_reason) {
    case StopReason::kDeadlineExceeded:
      ++metrics_.deadline_hits;
      break;
    case StopReason::kAccessBudgetExhausted:
      ++metrics_.budget_truncations;
      break;
    case StopReason::kCancelled:
      ++metrics_.cancellations;
      break;
    case StopReason::kNone:
      break;
  }
  if (response.degraded) ++metrics_.degraded_answers;
  metrics_.retries_total += response.retries;
  metrics_.dropped_tuples_total += response.dropped_tuples;
  metrics_.total_latency_seconds += response.latency_seconds;
  metrics_.total_stats += response.stats;
  metrics_.arena_peak_bytes_total += response.arena_peak_bytes;
  if (response.arena_peak_bytes > metrics_.arena_peak_bytes_max) {
    metrics_.arena_peak_bytes_max = response.arena_peak_bytes;
  }
  for (const TraceSpan& span : response.spans) {
    metrics_.span_seconds[span.name] += span.seconds;
  }
  latencies_.push_back(response.latency_seconds);
}

Result<std::shared_ptr<const PrecisAnswer>> PrecisService::AnswerQuery(
    const ServiceRequest& request, const DegreeConstraint& degree,
    const CardinalityConstraint& cardinality, const DbGenOptions& options,
    ExecutionContext* ctx, std::shared_ptr<const std::string>* body_out) {
  // AnswerShared routes through the engine's full-answer cache when that is
  // enabled (a hit shares the stored immutable answer) and degrades to a
  // plain uncached build otherwise. A render_body request takes the
  // rendered variant, which additionally memoizes the AnswerToJson bytes
  // through the engine's body cache (DESIGN.md §16).
  if (body_out == nullptr) {
    return engine_->AnswerShared(request.query, degree, cardinality, options,
                                 ctx);
  }
  auto rendered = engine_->AnswerSharedRendered(request.query, degree,
                                                cardinality, options, ctx);
  if (!rendered.ok()) return rendered.status();
  *body_out = std::move(rendered->body_json);
  return std::move(rendered->answer);
}

PrecisService::Metrics PrecisService::SnapshotCoreMetrics() const {
  Metrics snapshot;
  std::vector<double> sorted;
  {
    // Only the copy-out holds the lock. The percentile sort used to run in
    // here too — O(n log n) over the full latency history on every scrape,
    // stalling RecordOutcome (and through it the workers) under load.
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    snapshot = metrics_;
    sorted = latencies_;
  }
  if (!sorted.empty()) {
    std::sort(sorted.begin(), sorted.end());
    // Linear interpolation between closest ranks (bench_util.h Percentile
    // uses the same estimator, so bench reports and /metrics agree).
    auto percentile = [&sorted](double p) {
      double rank = p * static_cast<double>(sorted.size() - 1);
      size_t lo = static_cast<size_t>(rank);
      if (lo + 1 >= sorted.size()) return sorted.back();
      double frac = rank - static_cast<double>(lo);
      return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
    };
    snapshot.p50_latency_seconds = percentile(0.50);
    snapshot.p99_latency_seconds = percentile(0.99);
  }
  // The interner is process-wide (every Value shares it), so its footprint
  // belongs in the same one-call serving snapshot.
  snapshot.symbol_table = SymbolTable::Global()->stats();
  return snapshot;
}

PrecisService::Metrics PrecisService::metrics() const {
  Metrics snapshot = SnapshotCoreMetrics();
  // Cache counters live in the engine (shared by every caller of it, not
  // just this service); snapshot them here so one metrics() call tells the
  // whole serving story.
  if (engine_ != nullptr) {
    snapshot.token_cache = engine_->token_cache_stats();
    snapshot.schema_cache = engine_->schema_cache_stats();
    snapshot.answer_cache = engine_->answer_cache_stats();
    snapshot.body_cache = engine_->body_cache_stats();
  }
  return snapshot;
}

}  // namespace precis
