#include "translator/catalog.h"

namespace precis {

void TemplateCatalog::SetHeadingAttribute(const std::string& relation,
                                          const std::string& attribute) {
  heading_attributes_[relation] = attribute;
}

std::string TemplateCatalog::heading_attribute(
    const std::string& relation) const {
  auto it = heading_attributes_.find(relation);
  if (it == heading_attributes_.end()) return "";
  return it->second;
}

Status TemplateCatalog::SetProjectionTemplate(const std::string& relation,
                                              const std::string& source) {
  auto t = Template::Parse(source);
  if (!t.ok()) return t.status();
  projection_templates_[relation] = std::move(*t);
  return Status::OK();
}

Status TemplateCatalog::SetJoinTemplate(const std::string& from,
                                        const std::string& to,
                                        const std::string& source) {
  auto t = Template::Parse(source);
  if (!t.ok()) return t.status();
  join_templates_[{from, to}] = std::move(*t);
  return Status::OK();
}

Status TemplateCatalog::DefineMacro(const std::string& name,
                                    const std::string& source) {
  auto t = Template::Parse(source);
  if (!t.ok()) return t.status();
  macros_[name] = std::move(*t);
  return Status::OK();
}

const Template* TemplateCatalog::projection_template(
    const std::string& relation) const {
  auto it = projection_templates_.find(relation);
  if (it == projection_templates_.end()) return nullptr;
  return &it->second;
}

const Template* TemplateCatalog::join_template(const std::string& from,
                                               const std::string& to) const {
  auto it = join_templates_.find({from, to});
  if (it == join_templates_.end()) return nullptr;
  return &it->second;
}

const Template* TemplateCatalog::macro(const std::string& name) const {
  auto it = macros_.find(name);
  if (it == macros_.end()) return nullptr;
  return &it->second;
}

}  // namespace precis
