#include "translator/template.h"

#include <cctype>

#include "common/string_util.h"
#include "translator/catalog.h"

namespace precis {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Reads an identifier starting at `pos`; advances `pos` past it.
std::string ReadIdent(const std::string& s, size_t* pos) {
  size_t start = *pos;
  while (*pos < s.size() && IsIdentChar(s[*pos])) ++(*pos);
  return s.substr(start, *pos - start);
}

constexpr int kMaxMacroDepth = 16;

bool IsKnownFunction(const std::string& name) {
  return name == "upper" || name == "lower" || name == "trim" ||
         name == "count";
}

}  // namespace

Result<std::vector<Template::Node>> Template::ParseNodes(
    const std::string& source, size_t* pos, char terminator) {
  std::vector<Node> nodes;
  std::string literal;
  auto flush_literal = [&]() {
    if (!literal.empty()) {
      Node n;
      n.kind = Node::Kind::kLiteral;
      n.text = std::move(literal);
      literal.clear();
      nodes.push_back(std::move(n));
    }
  };

  while (*pos < source.size()) {
    char c = source[*pos];
    if (terminator != '\0' && c == terminator) {
      flush_literal();
      ++(*pos);
      return nodes;
    }
    if (c == '@') {
      ++(*pos);
      std::string name = ReadIdent(source, pos);
      if (name.empty()) {
        return Status::InvalidArgument(
            "template: '@' not followed by an attribute name in: " + source);
      }
      Node n;
      n.kind = Node::Kind::kVariable;
      n.text = ToLower(name);
      // Optional [$i$] index suffix.
      if (source.compare(*pos, 5, "[$i$]") == 0) {
        n.indexed = true;
        *pos += 5;
      }
      flush_literal();
      nodes.push_back(std::move(n));
      continue;
    }
    if (c == '%') {
      ++(*pos);
      std::string name = ReadIdent(source, pos);
      if (name.empty() || *pos >= source.size() || source[*pos] != '%') {
        return Status::InvalidArgument(
            "template: malformed macro reference (expected %NAME%) in: " +
            source);
      }
      ++(*pos);  // closing '%'
      flush_literal();
      Node n;
      n.kind = Node::Kind::kMacro;
      n.text = name;
      nodes.push_back(std::move(n));
      continue;
    }
    if (c == '[') {
      // Loop header: [i<arityof(@A)] or [i=arityof(@A)]
      size_t save = *pos;
      ++(*pos);
      if (source.compare(*pos, 1, "i") == 0) {
        ++(*pos);
        char op = (*pos < source.size()) ? source[*pos] : '\0';
        if (op == '<' || op == '=') {
          ++(*pos);
          if (source.compare(*pos, 9, "arityof(@") == 0) {
            *pos += 9;
            std::string attr = ReadIdent(source, pos);
            if (!attr.empty() && source.compare(*pos, 2, ")]") == 0) {
              *pos += 2;
              if (*pos >= source.size() || source[*pos] != '{') {
                return Status::InvalidArgument(
                    "template: loop header must be followed by '{' in: " +
                    source);
              }
              ++(*pos);  // '{'
              auto body = ParseNodes(source, pos, '}');
              if (!body.ok()) return body.status();
              flush_literal();
              Node n;
              n.kind = Node::Kind::kLoop;
              n.loop_last = (op == '=');
              n.loop_attr = ToLower(attr);
              n.body = std::move(*body);
              nodes.push_back(std::move(n));
              continue;
            }
          }
        }
      }
      // Not a loop header: treat '[' as literal text.
      *pos = save;
      literal.push_back('[');
      ++(*pos);
      continue;
    }
    if (c == '$') {
      // Try a function application $fn(...)$; fall back to a literal '$'.
      size_t save = *pos;
      ++(*pos);
      std::string name = ToLower(ReadIdent(source, pos));
      if (!name.empty() && *pos < source.size() && source[*pos] == '(') {
        if (!IsKnownFunction(name)) {
          return Status::InvalidArgument("template: unknown function '$" +
                                         name + "(...)$' in: " + source);
        }
        ++(*pos);  // '('
        auto body = ParseNodes(source, pos, ')');
        if (!body.ok()) return body.status();
        if (*pos >= source.size() || source[*pos] != '$') {
          return Status::InvalidArgument(
              "template: function application must end with '$' in: " +
              source);
        }
        ++(*pos);  // closing '$'
        flush_literal();
        Node n;
        n.kind = Node::Kind::kFunction;
        n.text = name;
        n.body = std::move(*body);
        nodes.push_back(std::move(n));
        continue;
      }
      *pos = save;
      literal.push_back('$');
      ++(*pos);
      continue;
    }
    literal.push_back(c);
    ++(*pos);
  }
  if (terminator != '\0') {
    return Status::InvalidArgument(
        std::string("template: missing closing '") + terminator +
        "' in: " + source);
  }
  flush_literal();
  return nodes;
}

Result<Template> Template::Parse(const std::string& source) {
  Template t;
  t.source_ = source;
  size_t pos = 0;
  auto nodes = ParseNodes(source, &pos, '\0');
  if (!nodes.ok()) return nodes.status();
  t.nodes_ = std::move(*nodes);
  return t;
}

Status Template::ResolveVariable(const std::string& name, bool indexed,
                                 const TemplateContext& context,
                                 std::optional<size_t> loop_index,
                                 std::string* out) const {
  // Indexed access targets the list.
  if (indexed || loop_index.has_value()) {
    if (context.list != nullptr && loop_index.has_value()) {
      if (*loop_index < context.list->size()) {
        auto it = (*context.list)[*loop_index].find(name);
        if (it != (*context.list)[*loop_index].end()) {
          out->append(it->second.ToString());
          return Status::OK();
        }
      }
    }
    if (indexed) {
      return Status::InvalidArgument("template: '@" + name +
                                     "[$i$]' used outside a loop over a "
                                     "list providing that attribute");
    }
  }
  // Subject chain, innermost first.
  for (const TupleBinding* subject : context.subjects) {
    auto it = subject->find(name);
    if (it != subject->end()) {
      out->append(it->second.ToString());
      return Status::OK();
    }
  }
  // Whole-list access: join all values.
  if (context.list != nullptr) {
    bool found = false;
    std::string joined;
    for (const TupleBinding& binding : *context.list) {
      auto it = binding.find(name);
      if (it != binding.end()) {
        if (found) joined.append(", ");
        joined.append(it->second.ToString());
        found = true;
      }
    }
    if (found) {
      out->append(joined);
      return Status::OK();
    }
  }
  return Status::NotFound("template: attribute '@" + name +
                          "' not bound in the evaluation context");
}

Status Template::EvaluateNodes(const std::vector<Node>& nodes,
                               const TemplateContext& context,
                               const TemplateCatalog* catalog,
                               std::optional<size_t> loop_index, int depth,
                               std::string* out) const {
  if (depth > kMaxMacroDepth) {
    return Status::InvalidArgument("template: macro recursion too deep");
  }
  for (const Node& node : nodes) {
    switch (node.kind) {
      case Node::Kind::kLiteral:
        out->append(node.text);
        break;
      case Node::Kind::kVariable:
        PRECIS_RETURN_NOT_OK(ResolveVariable(node.text, node.indexed, context,
                                             loop_index, out));
        break;
      case Node::Kind::kLoop: {
        size_t arity = 0;
        if (context.list != nullptr) {
          for (const TupleBinding& binding : *context.list) {
            if (binding.count(node.loop_attr) > 0) ++arity;
          }
        }
        if (arity == 0) break;
        if (node.loop_last) {
          PRECIS_RETURN_NOT_OK(EvaluateNodes(node.body, context, catalog,
                                             arity - 1, depth, out));
        } else {
          for (size_t i = 0; i + 1 < arity; ++i) {
            PRECIS_RETURN_NOT_OK(
                EvaluateNodes(node.body, context, catalog, i, depth, out));
          }
        }
        break;
      }
      case Node::Kind::kFunction: {
        if (node.text == "count") {
          // $count(@A)$: the arity of an attribute reference.
          if (node.body.size() != 1 ||
              node.body[0].kind != Node::Kind::kVariable) {
            return Status::InvalidArgument(
                "template: $count(...)$ takes a single @ATTR reference");
          }
          const std::string& attr = node.body[0].text;
          size_t arity = 0;
          if (context.list != nullptr) {
            for (const TupleBinding& binding : *context.list) {
              if (binding.count(attr) > 0) ++arity;
            }
          }
          if (arity == 0) {
            for (const TupleBinding* subject : context.subjects) {
              if (subject->count(attr) > 0) {
                arity = 1;
                break;
              }
            }
          }
          out->append(std::to_string(arity));
          break;
        }
        std::string rendered;
        PRECIS_RETURN_NOT_OK(EvaluateNodes(node.body, context, catalog,
                                           loop_index, depth, &rendered));
        if (node.text == "upper") {
          for (char& ch : rendered) {
            ch = static_cast<char>(
                std::toupper(static_cast<unsigned char>(ch)));
          }
          out->append(rendered);
        } else if (node.text == "lower") {
          out->append(ToLower(rendered));
        } else if (node.text == "trim") {
          out->append(Trim(rendered));
        } else {
          return Status::Internal("unhandled template function '" +
                                  node.text + "'");
        }
        break;
      }
      case Node::Kind::kMacro: {
        if (catalog == nullptr) {
          return Status::InvalidArgument("template: macro '%" + node.text +
                                         "%' used without a catalog");
        }
        const Template* macro = catalog->macro(node.text);
        if (macro == nullptr) {
          return Status::NotFound("template: undefined macro '%" + node.text +
                                  "%'");
        }
        PRECIS_RETURN_NOT_OK(macro->EvaluateNodes(
            macro->nodes_, context, catalog, loop_index, depth + 1, out));
        break;
      }
    }
  }
  return Status::OK();
}

Result<std::string> Template::Evaluate(const TemplateContext& context,
                                       const TemplateCatalog* catalog) const {
  std::string out;
  PRECIS_RETURN_NOT_OK(
      EvaluateNodes(nodes_, context, catalog, std::nullopt, 0, &out));
  return out;
}

}  // namespace precis
