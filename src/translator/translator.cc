#include "translator/translator.h"

#include <set>

#include "common/retry.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace precis {

namespace {

/// Converts one result-database tuple into an attribute-name -> value map
/// (names lowercased to match template variable resolution).
TupleBinding BindTuple(const RelationSchema& schema, const Tuple& tuple) {
  TupleBinding binding;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    binding[ToLower(schema.attribute(i).name)] = tuple[i];
  }
  return binding;
}

/// All bindings of a result relation, in tuple order.
Result<std::vector<TupleBinding>> BindRelation(const Database& db,
                                               const std::string& relation) {
  auto rel = db.GetRelation(relation);
  if (!rel.ok()) return rel.status();
  std::vector<TupleBinding> out;
  out.reserve((*rel)->num_tuples());
  for (Tid tid = 0; tid < (*rel)->num_tuples(); ++tid) {
    out.push_back(BindTuple((*rel)->schema(), (*rel)->tuple(tid)));
  }
  return out;
}

/// One subject tuple plus the bindings of its ancestors along the traversal
/// (innermost first). Ancestor values let a join-edge template that hops
/// through a heading-less relation (ACTOR -> CAST -> MOVIE) still reference
/// the original subject ("As an actor, @ANAME's work includes ...").
struct SubjectChain {
  TupleBinding subject;
  std::vector<TupleBinding> ancestors;

  TemplateContext MakeContext(const std::vector<TupleBinding>* list) const {
    TemplateContext ctx;
    ctx.subjects.push_back(&subject);
    for (const TupleBinding& a : ancestors) ctx.subjects.push_back(&a);
    ctx.list = list;
    return ctx;
  }
};

class OccurrenceRenderer {
 public:
  OccurrenceRenderer(const TemplateCatalog* catalog,
                     const PrecisAnswer& answer)
      : catalog_(catalog), answer_(answer) {}

  /// Renders the clauses for one subject tuple of the token relation.
  Result<std::string> RenderSubject(RelationNodeId start_rel,
                                    SubjectChain start) {
    clauses_.clear();
    visited_edges_.clear();

    const std::string& rel_name =
        answer_.schema.graph().relation_name(start_rel);
    const Template* projection = catalog_->projection_template(rel_name);
    if (projection != nullptr) {
      TemplateContext ctx = start.MakeContext(nullptr);
      auto clause = projection->Evaluate(ctx, catalog_);
      if (clause.ok()) {
        AppendClause(*clause);
      } else if (clause.status().IsNotFound()) {
        // The degree constraint excluded an attribute the template uses;
        // degrade to the bare heading value ("Woody Allen.") if available.
        std::string heading =
            ToLower(catalog_->heading_attribute(rel_name));
        auto it = start.subject.find(heading);
        if (it != start.subject.end() && !it->second.is_null()) {
          AppendClause(it->second.ToString() + ".");
        }
      } else {
        return clause.status();
      }
    }

    std::vector<SubjectChain> chains;
    chains.push_back(std::move(start));
    PRECIS_RETURN_NOT_OK(EmitJoinsFrom(start_rel, chains));

    std::string out;
    for (size_t i = 0; i < clauses_.size(); ++i) {
      if (i > 0) out += " ";
      out += clauses_[i];
    }
    return out;
  }

 private:
  void AppendClause(const std::string& clause) {
    std::string trimmed = Trim(clause);
    if (!trimmed.empty()) clauses_.push_back(std::move(trimmed));
  }

  /// Emits the clause(s) of one join edge and returns the joined tuples per
  /// input chain.
  ///
  /// Clause granularity follows the paper's heading-attribute rule ("each of
  /// these clauses has as subject the heading attribute of the relation that
  /// has the primary key"): an edge departing a relation *with* a heading
  /// attribute speaks once per subject tuple ("Match Point is Drama,
  /// Thriller." per movie), while an edge departing a heading-less link
  /// relation (CAST) speaks once per distinct ancestor subject, merging the
  /// joined tuples ("As an actor, Woody Allen's work includes A, B.").
  Status EmitEdgeClauses(const JoinEdge* edge,
                         const std::vector<SubjectChain>& chains,
                         const Template* join_template, bool link_relation,
                         const std::vector<std::vector<TupleBinding>>&
                             joined_per_chain) {
    if (join_template == nullptr) return Status::OK();
    if (!link_relation) {
      for (size_t i = 0; i < chains.size(); ++i) {
        if (joined_per_chain[i].empty()) continue;
        TemplateContext ctx = chains[i].MakeContext(&joined_per_chain[i]);
        auto clause = join_template->Evaluate(ctx, catalog_);
        if (clause.ok()) {
          AppendClause(*clause);
        } else if (!clause.status().IsNotFound()) {
          return clause.status();
        }
        // NotFound: an attribute the template needs was not projected under
        // this degree constraint; skip the clause.
      }
      return Status::OK();
    }

    // Link relation: group chains by their ancestor lineage and merge the
    // joined tuples of each group into one list.
    std::vector<std::string> group_order;
    std::map<std::string, size_t> group_index;
    std::vector<const SubjectChain*> representative;
    std::vector<std::vector<TupleBinding>> merged;
    std::vector<std::set<std::string>> seen_keys;
    auto binding_key = [](const TupleBinding& b) {
      std::string key;
      for (const auto& [name, value] : b) {
        key += name + "=" + value.ToString() + ";";
      }
      return key;
    };
    for (size_t i = 0; i < chains.size(); ++i) {
      if (joined_per_chain[i].empty()) continue;
      std::string lineage;
      for (const TupleBinding& a : chains[i].ancestors) {
        lineage += binding_key(a) + "|";
      }
      auto [it, inserted] = group_index.emplace(lineage, merged.size());
      if (inserted) {
        group_order.push_back(lineage);
        representative.push_back(&chains[i]);
        merged.emplace_back();
        seen_keys.emplace_back();
      }
      size_t g = it->second;
      for (const TupleBinding& j : joined_per_chain[i]) {
        if (seen_keys[g].insert(binding_key(j)).second) {
          merged[g].push_back(j);
        }
      }
    }
    (void)edge;
    for (size_t g = 0; g < merged.size(); ++g) {
      TemplateContext ctx = representative[g]->MakeContext(&merged[g]);
      auto clause = join_template->Evaluate(ctx, catalog_);
      if (clause.ok()) {
        AppendClause(*clause);
      } else if (!clause.status().IsNotFound()) {
        return clause.status();
      }
    }
    return Status::OK();
  }

  /// Processes every unvisited join edge of the result schema departing
  /// `rel`, emits its clauses, then recurses into the reached relations
  /// with the joined tuples as new subjects.
  Status EmitJoinsFrom(RelationNodeId rel,
                       const std::vector<SubjectChain>& chains) {
    const SchemaGraph& graph = answer_.schema.graph();
    for (const JoinEdge* edge : answer_.schema.join_edges()) {
      if (edge->from != rel) continue;
      if (!visited_edges_.insert(edge).second) continue;

      const std::string& from_name = graph.relation_name(edge->from);
      const std::string& to_name = graph.relation_name(edge->to);
      auto to_bindings = BindRelation(answer_.database, to_name);
      if (!to_bindings.ok()) return to_bindings.status();

      const Template* join_template =
          catalog_->join_template(from_name, to_name);
      const bool link_relation =
          catalog_->heading_attribute(from_name).empty();
      const std::string from_attr = ToLower(edge->from_attribute);
      const std::string to_attr = ToLower(edge->to_attribute);

      // Joined tuples per chain.
      std::vector<std::vector<TupleBinding>> joined_per_chain(chains.size());
      for (size_t i = 0; i < chains.size(); ++i) {
        auto key_it = chains[i].subject.find(from_attr);
        if (key_it == chains[i].subject.end() || key_it->second.is_null()) {
          continue;
        }
        for (const TupleBinding& candidate : *to_bindings) {
          auto it = candidate.find(to_attr);
          if (it != candidate.end() && it->second == key_it->second) {
            joined_per_chain[i].push_back(candidate);
          }
        }
      }

      PRECIS_RETURN_NOT_OK(EmitEdgeClauses(edge, chains, join_template,
                                           link_relation, joined_per_chain));

      // Recurse with each joined tuple as a new subject; a destination
      // tuple reached from several source tuples continues only once (its
      // own downstream clauses do not depend on which path reached it).
      std::vector<SubjectChain> next_chains;
      std::set<std::string> next_seen;
      auto subject_key = [](const TupleBinding& b) {
        std::string key;
        for (const auto& [name, value] : b) {
          key += name + "=" + value.ToString() + ";";
        }
        return key;
      };
      for (size_t i = 0; i < chains.size(); ++i) {
        for (const TupleBinding& j : joined_per_chain[i]) {
          if (!next_seen.insert(subject_key(j)).second) continue;
          SubjectChain next;
          next.subject = j;
          next.ancestors.push_back(chains[i].subject);
          next.ancestors.insert(next.ancestors.end(),
                                chains[i].ancestors.begin(),
                                chains[i].ancestors.end());
          next_chains.push_back(std::move(next));
        }
      }
      if (!next_chains.empty()) {
        PRECIS_RETURN_NOT_OK(EmitJoinsFrom(edge->to, next_chains));
      }
    }
    return Status::OK();
  }

  const TemplateCatalog* catalog_;
  const PrecisAnswer& answer_;
  std::vector<std::string> clauses_;
  std::set<const JoinEdge*> visited_edges_;
};

}  // namespace

Result<std::vector<std::string>> Translator::RenderOccurrence(
    const PrecisAnswer& answer, const std::string& token,
    const TokenOccurrence& occurrence, ExecutionContext* ctx) const {
  std::vector<std::string> paragraphs;
  if (!answer.database.HasRelation(occurrence.relation)) return paragraphs;

  // Fault gate for the template-catalog lookups this occurrence will do
  // (one retried check per occurrence, on the caller's thread). Exhausted
  // retries surface as Unavailable; Render() degrades the narrative while
  // keeping the structured answer intact (DESIGN.md §12).
  if (ctx != nullptr && ctx->fault_injector() != nullptr &&
      ctx->fault_injector()->armed()) {
    PRECIS_RETURN_NOT_OK(CheckFaultWithRetry(
        ctx, FaultSite::kTranslatorCatalog, ctx->retry_policy()));
  }

  auto rel = answer.database.GetRelation(occurrence.relation);
  if (!rel.ok()) return rel.status();
  auto rel_id = answer.schema.graph().RelationId(occurrence.relation);
  if (!rel_id.ok()) return rel_id.status();

  // Subjects: the result-database tuples of the occurrence relation that
  // contain the token (the result database holds at most the seed subset
  // selected under the cardinality constraint).
  std::vector<std::string> words = TokenizeWords(token);
  const RelationSchema& schema = (*rel)->schema();
  for (Tid tid = 0; tid < (*rel)->num_tuples(); ++tid) {
    if (ctx != nullptr && ctx->ShouldStop()) break;  // partial rendering
    const Tuple& tuple = (*rel)->tuple(tid);
    bool contains = false;
    for (size_t i = 0; i < schema.num_attributes() && !contains; ++i) {
      if (schema.attribute(i).type == DataType::kString &&
          !tuple[i].is_null() &&
          ContainsPhrase(tuple[i].AsString(), words)) {
        contains = true;
      }
    }
    if (!contains) continue;

    OccurrenceRenderer renderer(catalog_, answer);
    SubjectChain chain;
    chain.subject = BindTuple(schema, tuple);
    auto paragraph = renderer.RenderSubject(*rel_id, std::move(chain));
    if (!paragraph.ok()) return paragraph.status();
    if (!paragraph->empty()) paragraphs.push_back(std::move(*paragraph));
  }
  return paragraphs;
}

Result<std::string> Translator::Render(const PrecisAnswer& answer,
                                       ExecutionContext* ctx) const {
  ScopedSpan span(ctx, "translate");
  std::string out;
  const DegradationReport& degradation = answer.report.degradation;
  if (!degradation.shards_skipped.empty()) {
    // The answer was assembled without some partitions (DESIGN.md §17);
    // say so up front — the paper's stance is that a less complete answer
    // must still be an honest one.
    const uint32_t total = degradation.shards_total;
    const uint32_t reached =
        total - static_cast<uint32_t>(degradation.shards_skipped.size());
    out += "[answers from " + std::to_string(reached) + " of " +
           std::to_string(total) + " partitions]";
  }
  for (const TokenMatch& match : answer.matches) {
    for (const TokenOccurrence& occurrence : match.occurrences()) {
      if (ctx != nullptr && ctx->ShouldStop()) return out;
      auto paragraphs = RenderOccurrence(answer, match.token, occurrence, ctx);
      if (!paragraphs.ok()) {
        if (paragraphs.status().IsUnavailable()) {
          // Translator-stage fault after retries: the narrative degrades
          // to a placeholder for this occurrence, but the caller still
          // gets its structured answer — rendering never torpedoes the
          // query (DESIGN.md §12).
          if (!out.empty()) out += "\n\n";
          out += "[précis narrative unavailable for '" + match.token +
                 "' in " + occurrence.relation + "]";
          continue;
        }
        return paragraphs.status();
      }
      for (const std::string& p : *paragraphs) {
        if (!out.empty()) out += "\n\n";
        out += p;
      }
    }
  }
  return out;
}

}  // namespace precis
