// Designer-provided translation metadata (paper §5.3).
//
// A domain expert annotates the database graph for translation:
//  - each relation's *heading attribute* ("the physical meaning represented
//    by the value of at least one of its attributes"; MOVIE's is title);
//  - a *template label* per projection edge set, realized here as one
//    projection template per relation (the paper attaches expressions to
//    projection edges so that "complex sentences that make sense" are built
//    instead of repeating the subject per attribute);
//  - a template label per join edge;
//  - named macros usable inside templates (the paper's DEFINE ... as).

#ifndef PRECIS_TRANSLATOR_CATALOG_H_
#define PRECIS_TRANSLATOR_CATALOG_H_

#include <map>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "translator/template.h"

namespace precis {

/// \brief Registry of heading attributes, templates and macros for one
/// database schema.
class TemplateCatalog {
 public:
  /// Declares `attribute` as the heading attribute of `relation`.
  void SetHeadingAttribute(const std::string& relation,
                           const std::string& attribute);

  /// Heading attribute of a relation, or empty string if undeclared (the
  /// paper allows relations without one, e.g. CAST).
  std::string heading_attribute(const std::string& relation) const;

  /// Registers the clause template evaluated once per subject tuple of
  /// `relation` (the first part of the sentence, built around the heading
  /// attribute). Parses eagerly and fails on syntax errors.
  Status SetProjectionTemplate(const std::string& relation,
                               const std::string& source);

  /// Registers the clause template for the join edge `from` -> `to`.
  Status SetJoinTemplate(const std::string& from, const std::string& to,
                         const std::string& source);

  /// DEFINE `name` as `source`.
  Status DefineMacro(const std::string& name, const std::string& source);

  /// Lookups; nullptr when not registered.
  const Template* projection_template(const std::string& relation) const;
  const Template* join_template(const std::string& from,
                                const std::string& to) const;
  const Template* macro(const std::string& name) const;

 private:
  std::map<std::string, std::string> heading_attributes_;
  std::map<std::string, Template> projection_templates_;
  std::map<std::pair<std::string, std::string>, Template> join_templates_;
  std::map<std::string, Template> macros_;
};

}  // namespace precis

#endif  // PRECIS_TRANSLATOR_CATALOG_H_
