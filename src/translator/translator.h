// Result Database Translator (paper §5.3): renders the relational answer of
// a précis query as a natural-language synthesis of results.
//
// "The translation is realized separately for every occurrence of a token.
//  ... the analysis of the query result graph starts from the relation that
//  contains the input token. The labels of the projection edges ... are
//  evaluated first. ... After having constructed the clause for the relation
//  that contains the input token, we compose additional clauses that combine
//  information from more than one relation by using foreign key
//  relationships. ... The procedure ends when the traversal of the database
//  graph is complete."

#ifndef PRECIS_TRANSLATOR_TRANSLATOR_H_
#define PRECIS_TRANSLATOR_TRANSLATOR_H_

#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/result.h"
#include "precis/engine.h"
#include "translator/catalog.h"

namespace precis {

/// \brief Renders PrecisAnswers to text through a TemplateCatalog.
class Translator {
 public:
  explicit Translator(const TemplateCatalog* catalog) : catalog_(catalog) {}

  /// Renders the whole answer: one paragraph per token occurrence (the
  /// paper's homonym handling — "the answer of the précis query comprises
  /// one part for each token occurrence"), paragraphs separated by blank
  /// lines. An empty answer renders to an empty string.
  ///
  /// When `ctx` is given, the render is recorded as a "translate" trace
  /// span and stops between occurrences once the context says to; the
  /// paragraphs produced so far are returned (rendering works off the
  /// already-materialized answer, so it charges no storage accesses).
  Result<std::string> Render(const PrecisAnswer& answer,
                             ExecutionContext* ctx = nullptr) const;

  /// Renders the paragraphs for one token occurrence: one paragraph per
  /// subject tuple of the occurrence's relation that contains the token.
  /// Stops between subject tuples once `ctx` says to.
  Result<std::vector<std::string>> RenderOccurrence(
      const PrecisAnswer& answer, const std::string& token,
      const TokenOccurrence& occurrence,
      ExecutionContext* ctx = nullptr) const;

 private:
  const TemplateCatalog* catalog_;
};

}  // namespace precis

#endif  // PRECIS_TRANSLATOR_TRANSLATOR_H_
