// The template language of the Result Database Translator (paper §5.3).
//
// "In order to use template labels or to register new ones, we use a simple
//  language for templates that supports variables, loops, functions, and
//  macros."
//
// Syntax implemented here:
//
//   @ATTR            value of attribute ATTR. Resolved against the subject
//                    tuple chain (current subject first, then its
//                    ancestors); if the attribute belongs to the joined
//                    tuple list instead, all list values are joined with
//                    ", " ("Match Point is Drama, Thriller").
//   @ATTR[$i$]       the i-th element of the list's ATTR values; only
//                    meaningful inside a loop block, where i is the loop
//                    variable.
//   [i<arityof(@A)]{body}
//                    body repeated for i = 1 .. arityof(@A)-1 (all list
//                    elements but the last).
//   [i=arityof(@A)]{body}
//                    body evaluated once with i = arityof(@A) (the last
//                    element).
//   %NAME%           expansion of the macro NAME (registered with
//                    TemplateCatalog::DefineMacro). The paper writes macros
//                    as bare identifiers inside label formulas; this
//                    implementation delimits them with '%' so they can be
//                    embedded in free text unambiguously.
//   $fn(arg)$        function application on a nested template:
//                      $upper(...)$  uppercases the rendered argument
//                      $lower(...)$  lowercases it
//                      $trim(...)$   strips surrounding whitespace
//                      $count(@A)$   the arity of attribute A (list size,
//                                    1 when subject-bound, 0 when unbound)
//                    Unknown function names are parse errors; a '$' that
//                    does not start a well-formed application is literal.
//
// Everything else is literal text. Attribute names are case-insensitive.

#ifndef PRECIS_TRANSLATOR_TEMPLATE_H_
#define PRECIS_TRANSLATOR_TEMPLATE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/value.h"

namespace precis {

/// Attribute-name (uppercased) to value binding for one tuple.
using TupleBinding = std::map<std::string, Value>;

/// \brief Evaluation context for a template: a chain of subject tuples
/// (innermost first — the paper's clause subject plus its ancestors along
/// the traversal) and an optional list of joined tuples.
struct TemplateContext {
  std::vector<const TupleBinding*> subjects;
  const std::vector<TupleBinding>* list = nullptr;
};

class TemplateCatalog;  // macro registry, defined in catalog.h

/// \brief A parsed template, evaluatable against a TemplateContext.
class Template {
 public:
  Template() = default;

  /// Parses `source`; fails on unbalanced loop blocks, malformed variable
  /// references or malformed macro delimiters.
  static Result<Template> Parse(const std::string& source);

  /// Renders the template. `catalog` supplies macro definitions and may be
  /// null when the template uses no macros.
  Result<std::string> Evaluate(const TemplateContext& context,
                               const TemplateCatalog* catalog) const;

  const std::string& source() const { return source_; }

 private:
  struct Node {
    enum class Kind { kLiteral, kVariable, kLoop, kMacro, kFunction };
    Kind kind = Kind::kLiteral;
    std::string text;       // literal / attribute name / macro / function
    bool indexed = false;   // @ATTR[$i$]
    bool loop_last = false; // [i=...] (last element) vs [i<...] (all but last)
    std::string loop_attr;  // the A in arityof(@A)
    std::vector<Node> body; // loop or function-argument body
  };

  /// `terminator` is '\0' at top level, '}' inside a loop block, ')' inside
  /// a function argument.
  static Result<std::vector<Node>> ParseNodes(const std::string& source,
                                              size_t* pos, char terminator);
  Status EvaluateNodes(const std::vector<Node>& nodes,
                       const TemplateContext& context,
                       const TemplateCatalog* catalog,
                       std::optional<size_t> loop_index, int depth,
                       std::string* out) const;
  Status ResolveVariable(const std::string& name, bool indexed,
                         const TemplateContext& context,
                         std::optional<size_t> loop_index,
                         std::string* out) const;

  std::string source_;
  std::vector<Node> nodes_;
};

}  // namespace precis

#endif  // PRECIS_TRANSLATOR_TEMPLATE_H_
