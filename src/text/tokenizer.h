// Word tokenizer for attribute values and query tokens.

#ifndef PRECIS_TEXT_TOKENIZER_H_
#define PRECIS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace precis {

/// \brief Splits text into lower-cased alphanumeric words.
///
/// "Woody Allen" -> {"woody", "allen"}; "Match Point (2005)" -> {"match",
/// "point", "2005"}. Both the inverted index (over attribute values) and the
/// query parser (over user tokens) use this, so a précis query token matches
/// irrespective of case and punctuation.
std::vector<std::string> TokenizeWords(std::string_view text);

/// \brief True if `words` occurs as a contiguous word sequence in `text`
/// (after tokenization). An empty word list never matches.
bool ContainsPhrase(std::string_view text,
                    const std::vector<std::string>& words);

}  // namespace precis

#endif  // PRECIS_TEXT_TOKENIZER_H_
