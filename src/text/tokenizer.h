// Word tokenizer for attribute values and query tokens.

#ifndef PRECIS_TEXT_TOKENIZER_H_
#define PRECIS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/symbol_table.h"

namespace precis {

/// \brief Splits text into lower-cased alphanumeric words.
///
/// "Woody Allen" -> {"woody", "allen"}; "Match Point (2005)" -> {"match",
/// "point", "2005"}. Both the inverted index (over attribute values) and the
/// query parser (over user tokens) use this, so a précis query token matches
/// irrespective of case and punctuation.
std::vector<std::string> TokenizeWords(std::string_view text);

/// \brief True if `words` occurs as a contiguous word sequence in `text`
/// (after tokenization). An empty word list never matches.
bool ContainsPhrase(std::string_view text,
                    const std::vector<std::string>& words);

/// \brief TokenizeWords, but each word is interned into the global
/// SymbolTable and returned as its SymbolId. The inverted index keys its
/// postings on these ids, so the token hot path hashes and compares 4-byte
/// ids instead of strings (DESIGN.md §13). Tokenization rules are
/// identical to TokenizeWords.
std::vector<SymbolId> TokenizeWordSymbols(std::string_view text);

/// \brief ContainsPhrase over interned words: true if `words` occurs as a
/// contiguous word-id sequence in the tokenization of `text`. Matches
/// ContainsPhrase exactly (interned-id equality <=> word equality).
bool ContainsPhraseSymbols(std::string_view text,
                           const std::vector<SymbolId>& words);

}  // namespace precis

#endif  // PRECIS_TEXT_TOKENIZER_H_
