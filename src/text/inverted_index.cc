#include "text/inverted_index.h"

#include <algorithm>
#include <cstring>

#include "common/gallop.h"

namespace precis {

namespace {

// Shared empty result for misses: Lookup never returns null, and callers
// that hold many unknown-token results all point at this one vector.
const OccurrenceList& EmptyOccurrences() {
  static const OccurrenceList empty =
      std::make_shared<const std::vector<TokenOccurrence>>();
  return empty;
}

// Cache key: the word-id sequence as raw bytes. Fixed-width ids make the
// encoding unambiguous, and building it does no string joins or re-hashing
// of word bytes.
std::string CacheKey(const std::vector<SymbolId>& words) {
  std::string key(words.size() * sizeof(SymbolId), '\0');
  std::memcpy(key.data(), words.data(), key.size());
  return key;
}

}  // namespace

Result<InvertedIndex> InvertedIndex::Build(const Database& db) {
  InvertedIndex index;
  index.db_ = &db;
  index.relation_names_ = db.RelationNames();
  for (uint32_t r = 0; r < index.relation_names_.size(); ++r) {
    auto rel = db.GetRelation(index.relation_names_[r]);
    if (!rel.ok()) return rel.status();
    const RelationSchema& schema = (*rel)->schema();
    for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
      if (schema.attribute(a).type != DataType::kString) continue;
      for (Tid tid = 0; tid < (*rel)->num_tuples(); ++tid) {
        const Value& v = (*rel)->tuple(tid)[a];
        if (v.is_null()) continue;
        std::vector<SymbolId> words = TokenizeWordSymbols(v.AsString());
        // De-duplicate words within one value so each location appears at
        // most once in a word's posting list.
        std::sort(words.begin(), words.end());
        words.erase(std::unique(words.begin(), words.end()), words.end());
        for (SymbolId w : words) {
          index.postings_[w].push_back(Location{r, a, tid});
        }
      }
    }
  }
  for (auto& [word, locs] : index.postings_) {
    std::sort(locs.begin(), locs.end());
  }
  return index;
}

size_t InvertedIndex::num_postings() const {
  size_t n = 0;
  for (const auto& [word, locs] : postings_) n += locs.size();
  return n;
}

bool InvertedIndex::ContainsPhrase(const Location& loc,
                                   const std::vector<SymbolId>& words) const {
  auto rel = db_->GetRelation(relation_names_[loc.relation]);
  if (!rel.ok()) return false;
  const Value& v = (*rel)->tuple(loc.tid)[loc.attribute];
  if (!v.is_string()) return false;
  return precis::ContainsPhraseSymbols(v.AsString(), words);
}

size_t EstimateOccurrencesCharge(const std::vector<TokenOccurrence>& occs) {
  size_t charge = sizeof(std::vector<TokenOccurrence>);
  for (const TokenOccurrence& occ : occs) {
    charge += sizeof(TokenOccurrence) + occ.relation.capacity() +
              occ.attribute.capacity() + occ.tids.capacity() * sizeof(Tid);
  }
  return charge;
}

OccurrenceList InvertedIndex::Lookup(const std::string& token) const {
  std::vector<SymbolId> words = TokenizeWordSymbols(token);
  if (words.empty()) return EmptyOccurrences();
  // Multi-word phrases go through the token-occurrence cache when enabled:
  // they pay posting-list intersection plus per-candidate phrase
  // verification (a re-scan of the stored string), which repeated popular
  // queries should not redo. The postings are immutable after Build, so a
  // cached result can never be stale with respect to this index.
  if (words.size() >= 2 &&
      cache_->enabled.load(std::memory_order_relaxed)) {
    std::string key = CacheKey(words);
    if (OccurrenceList hit = cache_->lru.Get(key)) {
      return hit;  // shared, immutable — no deep copy on the hit path
    }
    auto value = std::make_shared<const std::vector<TokenOccurrence>>(
        LookupUncached(words));
    cache_->lru.Put(key, value, EstimateOccurrencesCharge(*value));
    return value;
  }
  return std::make_shared<const std::vector<TokenOccurrence>>(
      LookupUncached(words));
}

std::vector<TokenOccurrence> InvertedIndex::LookupUncached(
    const std::vector<SymbolId>& words) const {
  std::vector<TokenOccurrence> out;

  // Intersect the word posting lists; start from the rarest word.
  if (words.empty()) return out;
  const std::vector<Location>* smallest = nullptr;
  for (SymbolId w : words) {
    auto it = postings_.find(w);
    if (it == postings_.end()) return out;  // some word absent: no matches
    if (smallest == nullptr || it->second.size() < smallest->size()) {
      smallest = &it->second;
    }
  }

  // One galloping cursor per word. The driver list (`smallest`) is sorted,
  // so probe values ascend and each cursor sweeps its posting list at most
  // once for the whole intersection instead of binary-searching from
  // scratch per candidate (common/gallop.h). Duplicate query words get
  // independent cursors over the same list, which is harmless.
  std::vector<GallopCursor<Location>> cursors;
  cursors.reserve(words.size());
  for (SymbolId w : words) cursors.emplace_back(&postings_.at(w));

  std::vector<Location> candidates;
  for (const Location& loc : *smallest) {
    bool in_all = true;
    for (GallopCursor<Location>& cursor : cursors) {
      if (!cursor.Contains(loc)) {
        in_all = false;
        break;
      }
    }
    if (in_all && (words.size() == 1 || ContainsPhrase(loc, words))) {
      candidates.push_back(loc);
    }
  }

  // Group by (relation, attribute); candidates are already sorted.
  for (const Location& loc : candidates) {
    auto rel = db_->GetRelation(relation_names_[loc.relation]);
    const std::string& attr =
        (*rel)->schema().attribute(loc.attribute).name;
    if (!out.empty() && out.back().relation == relation_names_[loc.relation] &&
        out.back().attribute == attr) {
      out.back().tids.push_back(loc.tid);
    } else {
      out.push_back(TokenOccurrence{relation_names_[loc.relation], attr,
                                    {loc.tid}});
    }
  }
  return out;
}

std::vector<OccurrenceList> InvertedIndex::LookupAll(
    const std::vector<std::string>& query) const {
  std::vector<OccurrenceList> out;
  out.reserve(query.size());
  for (const std::string& token : query) out.push_back(Lookup(token));
  return out;
}

}  // namespace precis
