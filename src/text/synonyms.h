// Synonym resolution for query tokens (paper §5.1).
//
// "Different values may be used for the same object (synonyms); e.g.,
//  'W. Allen' and 'Woody Allen' that correspond to the same person. ...
//  there exist approaches for cleaning and homogenizing string data."
//
// The paper treats entity resolution as orthogonal and assumes some
// mechanism exists; this table is that mechanism's output: a designer- or
// tool-provided mapping from variant spellings to canonical tokens, applied
// before the inverted-index lookup.

#ifndef PRECIS_TEXT_SYNONYMS_H_
#define PRECIS_TEXT_SYNONYMS_H_

#include <map>
#include <string>

#include "common/status.h"

namespace precis {

/// \brief Maps variant token spellings to canonical tokens.
///
/// Matching is on whole tokens, case- and punctuation-insensitive ("w.
/// allen" == "W Allen"). Chains (a -> b, b -> c) resolve transitively with
/// a bounded depth; cycles are rejected at insertion time.
class SynonymTable {
 public:
  /// Declares `variant` to mean `canonical`. Fails if the mapping would
  /// create a cycle or if either side normalizes to the empty token.
  Status AddSynonym(const std::string& variant, const std::string& canonical);

  /// The canonical spelling for `token`: follows mappings transitively and
  /// returns the final canonical string as registered, or `token` itself if
  /// no mapping applies.
  std::string Canonicalize(const std::string& token) const;

  size_t size() const { return mapping_.size(); }

 private:
  /// Normalized token -> (normalized canonical, canonical as registered).
  std::map<std::string, std::pair<std::string, std::string>> mapping_;
};

}  // namespace precis

#endif  // PRECIS_TEXT_SYNONYMS_H_
