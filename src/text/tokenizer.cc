#include "text/tokenizer.h"

#include <cctype>

namespace precis {

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

std::vector<SymbolId> TokenizeWordSymbols(std::string_view text) {
  std::vector<SymbolId> words;
  SymbolTable* symbols = SymbolTable::Global();
  // One reused buffer: clear() keeps the capacity, so steady-state
  // tokenization of a value allocates nothing per word.
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      words.push_back(symbols->Intern(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(symbols->Intern(current));
  return words;
}

bool ContainsPhraseSymbols(std::string_view text,
                           const std::vector<SymbolId>& words) {
  if (words.empty()) return false;
  std::vector<SymbolId> text_words = TokenizeWordSymbols(text);
  if (words.size() > text_words.size()) return false;
  for (size_t start = 0; start + words.size() <= text_words.size(); ++start) {
    bool match = true;
    for (size_t i = 0; i < words.size(); ++i) {
      if (text_words[start + i] != words[i]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

bool ContainsPhrase(std::string_view text,
                    const std::vector<std::string>& words) {
  if (words.empty()) return false;
  std::vector<std::string> text_words = TokenizeWords(text);
  if (words.size() > text_words.size()) return false;
  for (size_t start = 0; start + words.size() <= text_words.size(); ++start) {
    bool match = true;
    for (size_t i = 0; i < words.size(); ++i) {
      if (text_words[start + i] != words[i]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

}  // namespace precis
