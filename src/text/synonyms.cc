#include "text/synonyms.h"

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace precis {

namespace {

/// Whole-token normal form: lowercased words joined by single spaces.
std::string Normalize(const std::string& token) {
  return Join(TokenizeWords(token), " ");
}

constexpr int kMaxChain = 16;

}  // namespace

Status SynonymTable::AddSynonym(const std::string& variant,
                                const std::string& canonical) {
  std::string from = Normalize(variant);
  std::string to = Normalize(canonical);
  if (from.empty() || to.empty()) {
    return Status::InvalidArgument("synonym sides must be non-empty tokens");
  }
  if (from == to) {
    return Status::InvalidArgument("synonym maps token to itself: '" +
                                   variant + "'");
  }
  // Reject cycles: walking from `to` must not reach `from`.
  std::string cursor = to;
  for (int i = 0; i < kMaxChain; ++i) {
    auto it = mapping_.find(cursor);
    if (it == mapping_.end()) break;
    cursor = it->second.first;
    if (cursor == from) {
      return Status::InvalidArgument("synonym cycle: '" + variant +
                                     "' -> '" + canonical + "'");
    }
  }
  mapping_[from] = {to, canonical};
  return Status::OK();
}

std::string SynonymTable::Canonicalize(const std::string& token) const {
  std::string cursor = Normalize(token);
  std::string resolved = token;
  for (int i = 0; i < kMaxChain; ++i) {
    auto it = mapping_.find(cursor);
    if (it == mapping_.end()) break;
    cursor = it->second.first;
    resolved = it->second.second;
  }
  return resolved;
}

}  // namespace precis
