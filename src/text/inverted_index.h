// Inverted index: token -> {(relation, attribute, tids)} (paper §4).
//
// "An inverted index associates each token that appears in the database with
//  a list of occurrences of the token. Each occurrence is recorded as an
//  attribute-relation pair (Rj, Alj). For each such pair, the list Tids_lj of
//  ids of tuples from Rj in which Alj includes the token, is also returned."

#ifndef PRECIS_TEXT_INVERTED_INDEX_H_
#define PRECIS_TEXT_INVERTED_INDEX_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "common/result.h"
#include "common/status.h"
#include "common/symbol_table.h"
#include "storage/database.h"
#include "text/tokenizer.h"

namespace precis {

/// \brief All tuples of one relation-attribute pair that include a token.
struct TokenOccurrence {
  std::string relation;
  std::string attribute;
  std::vector<Tid> tids;
};

/// \brief A shared, immutable lookup result. Cache hits and misses return
/// the same shared vector instead of deep-copying occurrences per call.
using OccurrenceList = std::shared_ptr<const std::vector<TokenOccurrence>>;

/// \brief Full-text inverted index over the string attributes of a Database.
///
/// Queries may be multi-word ("Woody Allen"): word postings are intersected
/// per (relation, attribute, tid) and verified as a contiguous phrase in the
/// stored value, so "Woody Allen" matches the value "Woody Allen" but not a
/// value containing only "Allen" or the words in the wrong order.
///
/// Postings are keyed on interned word ids (SymbolTable), so a lookup
/// hashes 4-byte ids rather than strings (DESIGN.md §13).
class InvertedIndex {
 public:
  /// Indexes every string attribute of every relation in `db`. The Database
  /// must outlive the index. Word extraction is not counted in AccessStats
  /// (the paper excludes index construction from its measurements).
  static Result<InvertedIndex> Build(const Database& db);

  /// Occurrences of a (possibly multi-word) token, grouped by
  /// relation-attribute pair. Never null; points at an empty vector if the
  /// token appears nowhere. The result is shared and immutable — hot
  /// multi-word queries no longer deep-copy the postings out of the cache.
  OccurrenceList Lookup(const std::string& token) const;

  /// Occurrences for each token of a query, in query order.
  std::vector<OccurrenceList> LookupAll(
      const std::vector<std::string>& query) const;

  /// Number of distinct indexed words.
  size_t num_words() const { return postings_.size(); }

  /// Number of posting entries across all words.
  size_t num_postings() const;

  /// Token-occurrence cache (DESIGN.md §10, level 1): memoizes the result
  /// of multi-word Lookup calls. Intersecting posting lists and re-scanning
  /// stored strings for contiguous-phrase verification is the most
  /// expensive part of token matching, and the postings are immutable after
  /// Build (the source database is append-only and later inserts are not
  /// indexed), so a memoized lookup can never be stale with respect to this
  /// index. Single-word lookups are not cached: they do no phrase
  /// verification and would only thrash the cache. Off by default.
  ///
  /// Thread-safety: Lookup may run from many threads; the cache is
  /// internally locked (sharded LRU). Enabling/disabling must not race
  /// with lookups (same contract as the engine's set_* configuration).
  void set_lookup_cache_enabled(bool enabled) {
    cache_->enabled.store(enabled, std::memory_order_relaxed);
    if (!enabled) cache_->lru.Clear();
  }
  bool lookup_cache_enabled() const {
    return cache_->enabled.load(std::memory_order_relaxed);
  }
  LruCacheStats lookup_cache_stats() const { return cache_->lru.stats(); }
  void ClearLookupCache() { cache_->lru.Clear(); }

 private:
  struct Location {
    uint32_t relation;   // index into relation_names_
    uint32_t attribute;  // attribute index within the relation
    Tid tid;

    bool operator==(const Location& o) const {
      return relation == o.relation && attribute == o.attribute &&
             o.tid == tid;
    }
    bool operator<(const Location& o) const {
      if (relation != o.relation) return relation < o.relation;
      if (attribute != o.attribute) return attribute < o.attribute;
      return tid < o.tid;
    }
  };

  InvertedIndex() = default;

  /// True if `words` occurs as a contiguous word sequence in the value at
  /// `loc`.
  bool ContainsPhrase(const Location& loc,
                      const std::vector<SymbolId>& words) const;

  /// Uncached lookup path shared by Lookup and the cache-miss fill.
  std::vector<TokenOccurrence> LookupUncached(
      const std::vector<SymbolId>& words) const;

  const Database* db_ = nullptr;
  std::vector<std::string> relation_names_;
  // interned word id -> sorted locations containing the word
  std::unordered_map<SymbolId, std::vector<Location>> postings_;

  // Token-occurrence cache, keyed by the normalized phrase's word-id
  // sequence (4 raw bytes per word — unambiguous, cheaper than re-joining
  // strings). Behind a unique_ptr so the index stays movable despite the
  // atomic + shard mutexes; mutable because Lookup is logically const.
  struct LookupCache {
    std::atomic<bool> enabled{false};
    // 4 MiB default capacity: a vocabulary-sized working set of phrase
    // results, bounded so pathological workloads cannot grow it forever.
    ShardedLruCache<std::string, std::vector<TokenOccurrence>> lru{4 << 20};
  };
  std::unique_ptr<LookupCache> cache_ = std::make_unique<LookupCache>();
};

/// \brief Approximate heap footprint of a lookup result, used as the LRU
/// charge (exposed for tests and the engine's answer-cache estimate).
size_t EstimateOccurrencesCharge(const std::vector<TokenOccurrence>& occs);

}  // namespace precis

#endif  // PRECIS_TEXT_INVERTED_INDEX_H_
